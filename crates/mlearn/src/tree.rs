//! CART decision trees with Gini impurity and random feature subsets.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split; `None` means all.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 32, min_samples_split: 2, max_features: None }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability estimate from training-sample proportions.
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Weighted impurity decrease contributed by this split
        /// (`n_node/n_total · (gini_parent − gini_children)`), accumulated
        /// into mean-decrease-in-impurity feature importances.
        importance: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTree {
    /// Grows a tree on the rows of `data` at `indices`.
    ///
    /// `rng` drives the per-split random feature subsetting when
    /// [`TreeConfig::max_features`] is set.
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty.
    pub fn fit<R: Rng>(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let total = indices.len();
        let mut idx = indices.to_vec();
        let root = grow(data, &mut idx, config, rng, 0, total);
        DecisionTree { root, n_classes: data.n_classes(), n_features: data.n_features() }
    }

    /// Class-probability estimate for one feature row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the training width.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        self.leaf_probs(row).to_vec()
    }

    /// The training-sample class proportions of the leaf `row` lands in,
    /// borrowed from the tree — the allocation-free core of
    /// [`DecisionTree::predict_proba`], which batched ensemble scoring
    /// accumulates from directly instead of cloning a `Vec` per tree per
    /// row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the training width.
    pub fn leaf_probs(&self, row: &[f64]) -> &[f64] {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probs } => return probs,
                Node::Split { feature, threshold, left, right, .. } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Most probable class for one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Number of leaves (diagnostic; useful in tests and benches).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Mean-decrease-in-impurity feature importances (unnormalized): the
    /// weighted Gini decrease accumulated per feature over all splits.
    pub fn feature_importances(&self) -> Vec<f64> {
        fn walk(node: &Node, acc: &mut [f64]) {
            if let Node::Split { feature, importance, left, right, .. } = node {
                acc[*feature] += importance;
                walk(left, acc);
                walk(right, acc);
            }
        }
        let mut acc = vec![0.0; self.n_features];
        walk(&self.root, &mut acc);
        acc
    }

    /// Maximum depth of the grown tree.
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

/// Index of the maximum value (ties broken toward the lower index).
pub(crate) fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

fn class_probs(data: &Dataset, indices: &[usize]) -> Vec<f64> {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in indices {
        counts[data.label(i)] += 1;
    }
    let total = indices.len() as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

/// Finds the lowest-weighted-Gini binary split among `features`.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    features: &[usize],
    parent_gini: f64,
) -> Option<BestSplit> {
    let n = indices.len();
    let mut best: Option<BestSplit> = None;
    for &f in features {
        // Sort samples by this feature's value.
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| data.row(a)[f].total_cmp(&data.row(b)[f]));
        let mut left_counts = vec![0usize; data.n_classes()];
        let mut right_counts = vec![0usize; data.n_classes()];
        for &i in &order {
            right_counts[data.label(i)] += 1;
        }
        for split_at in 1..n {
            let moved = order[split_at - 1];
            left_counts[data.label(moved)] += 1;
            right_counts[data.label(moved)] -= 1;
            let prev = data.row(order[split_at - 1])[f];
            let next = data.row(order[split_at])[f];
            if prev == next {
                continue; // cannot split between equal values
            }
            let wl = split_at as f64 / n as f64;
            let impurity = wl * gini(&left_counts, split_at)
                + (1.0 - wl) * gini(&right_counts, n - split_at);
            // Zero-gain splits are admitted (like scikit-learn's CART):
            // they make progress on XOR-like data, and recursion still
            // terminates because both children are strictly smaller.
            if impurity < best.as_ref().map_or(parent_gini + 1e-12, |b| b.impurity) {
                best = Some(BestSplit { feature: f, threshold: (prev + next) / 2.0, impurity });
            }
        }
    }
    best
}

fn grow<R: Rng>(
    data: &Dataset,
    indices: &mut Vec<usize>,
    config: &TreeConfig,
    rng: &mut R,
    depth: usize,
    total: usize,
) -> Node {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in indices.iter() {
        counts[data.label(i)] += 1;
    }
    let node_gini = gini(&counts, indices.len());
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= config.max_depth || indices.len() < config.min_samples_split {
        return Node::Leaf { probs: class_probs(data, indices) };
    }
    // Random feature subset (without replacement).
    let mut feature_ids: Vec<usize> = (0..data.n_features()).collect();
    let features: Vec<usize> = match config.max_features {
        Some(k) if k < feature_ids.len() => {
            feature_ids.shuffle(rng);
            feature_ids.truncate(k);
            feature_ids
        }
        _ => feature_ids,
    };
    let Some(split) = best_split(data, indices, &features, node_gini) else {
        return Node::Leaf { probs: class_probs(data, indices) };
    };
    let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| data.row(i)[split.feature] <= split.threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf { probs: class_probs(data, indices) };
    }
    let importance =
        indices.len() as f64 / total as f64 * (node_gini - split.impurity).max(0.0);
    indices.clear();
    indices.shrink_to_fit();
    let left = grow(data, &mut left_idx, config, rng, depth + 1, total);
    let right = grow(data, &mut right_idx, config, rng, depth + 1, total);
    Node::Split {
        feature: split.feature,
        threshold: split.threshold,
        importance,
        left: Box::new(left),
        right: Box::new(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn threshold_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()], 2);
        for i in 0..40 {
            let x = i as f64;
            let noise = (i * 7 % 13) as f64;
            d.push(vec![x, noise], usize::from(x >= 20.0));
        }
        d
    }

    fn all_indices(d: &Dataset) -> Vec<usize> {
        (0..d.len()).collect()
    }

    #[test]
    fn learns_a_simple_threshold() {
        let d = threshold_data();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict(&[5.0, 0.0]), 0);
        assert_eq!(tree.predict(&[35.0, 0.0]), 1);
        // One clean split suffices: exactly two leaves.
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], 0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict_proba(&[3.0]), vec![1.0, 0.0]);
    }

    #[test]
    fn max_depth_caps_growth() {
        let d = threshold_data();
        let mut rng = StdRng::seed_from_u64(1);
        let config = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&d, &all_indices(&d), &config, &mut rng);
        assert_eq!(tree.depth(), 0);
        let probs = tree.predict_proba(&[0.0, 0.0]);
        assert!((probs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_features_yield_leaf() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![7.0], i % 2);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..5 {
                d.push(vec![a, b], ((a as usize) ^ (b as usize)) & 1);
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            assert_eq!(tree.predict(&[a, b]), ((a as usize) ^ (b as usize)) & 1);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn probabilities_reflect_leaf_mixture() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        // Left of 10: 3 of class 0, 1 of class 1 (inseparable duplicates).
        for _ in 0..3 {
            d.push(vec![5.0], 0);
        }
        d.push(vec![5.0], 1);
        for _ in 0..4 {
            d.push(vec![15.0], 1);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        let probs = tree.predict_proba(&[5.0]);
        assert!((probs[0] - 0.75).abs() < 1e-12);
        assert!((probs[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_features_one_still_learns() {
        let d = threshold_data();
        let mut rng = StdRng::seed_from_u64(3);
        let config = TreeConfig { max_features: Some(1), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&d, &all_indices(&d), &config, &mut rng);
        // With deep growth even a random per-split feature choice separates.
        let correct = (0..40)
            .filter(|&i| tree.predict(d.row(i)) == d.label(i))
            .count();
        assert!(correct >= 36, "got {correct}/40");
    }

    #[test]
    fn importances_credit_the_informative_feature() {
        let d = threshold_data();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&d, &all_indices(&d), &TreeConfig::default(), &mut rng);
        let imp = tree.feature_importances();
        assert!(imp[0] > imp[1], "signal {} vs noise {}", imp[0], imp[1]);
        assert!(imp[0] > 0.0);
        // A clean binary split on a balanced problem decreases Gini from
        // 0.5 to 0: root importance ≈ 0.5.
        assert!((imp[0] - 0.5).abs() < 0.05, "{}", imp[0]);
    }

    #[test]
    fn argmax_prefers_lower_index_on_ties() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }
}
