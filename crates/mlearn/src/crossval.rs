//! Stratified k-fold cross-validation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::forest::{ForestConfig, RandomForest};
use crate::metrics::{roc_auc, Confusion};
use crate::parallel;

/// One train/test split of sample indices.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training-sample indices.
    pub train: Vec<usize>,
    /// Held-out test-sample indices.
    pub test: Vec<usize>,
}

/// Produces `k` stratified folds: each class is shuffled independently and
/// dealt round-robin so every fold preserves the class mix.
///
/// # Panics
///
/// Panics when `k < 2` or `k` exceeds the number of samples.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= labels.len(), "more folds than samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().max().map_or(0, |m| m + 1);
    let mut fold_members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in 0..n_classes {
        let mut members: Vec<usize> =
            (0..labels.len()).filter(|&i| labels[i] == class).collect();
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            fold_members[j % k].push(idx);
        }
    }
    (0..k)
        .map(|f| {
            let test = fold_members[f].clone();
            let train = fold_members
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != f)
                .flat_map(|(_, m)| m.iter().copied())
                .collect();
            Fold { train, test }
        })
        .collect()
}

/// Aggregated cross-validation result for a binary problem.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Pooled confusion counts over all folds.
    pub confusion: Confusion,
    /// Pooled positive-class scores per test sample (by original index).
    pub scores: Vec<f64>,
    /// Pooled predicted labels per sample (by original index).
    pub predictions: Vec<usize>,
    /// ROC area computed over the pooled scores.
    pub roc_area: f64,
}

/// Runs stratified k-fold cross-validation of a [`RandomForest`] on a
/// binary dataset, pooling test predictions over folds (the paper's 10-fold
/// evaluation methodology). Folds run on all available cores; see
/// [`cross_validate_threaded`].
///
/// `positive` designates the class whose detection is being measured
/// (infection = 1 in the DynaMiner datasets).
///
/// # Panics
///
/// Panics when the dataset is not binary or `k` is invalid.
pub fn cross_validate(
    data: &Dataset,
    k: usize,
    config: &ForestConfig,
    positive: usize,
    seed: u64,
) -> CvResult {
    cross_validate_threaded(data, k, config, positive, seed, parallel::default_threads())
}

/// [`cross_validate`] with an explicit thread budget.
///
/// Folds are independent (each trains on its own subset with its own
/// derived seed), so they run through the worker pool; the thread budget
/// is split between fold-level workers and the per-fold forest fit
/// (`fit_threaded`). Because forest training is itself thread-count
/// invariant, the pooled result is bit-identical for any `threads`.
pub fn cross_validate_threaded(
    data: &Dataset,
    k: usize,
    config: &ForestConfig,
    positive: usize,
    seed: u64,
    threads: usize,
) -> CvResult {
    assert_eq!(data.n_classes(), 2, "cross_validate expects a binary dataset");
    let threads = threads.max(1);
    let folds = stratified_kfold(data.labels(), k, seed);
    // Split the budget: up to k fold workers, remaining threads go to each
    // fold's forest fit.
    let fold_workers = threads.min(k);
    let fit_threads = (threads / fold_workers).max(1);
    let per_fold: Vec<Vec<(usize, f64, usize)>> =
        parallel::run_indexed(folds.len(), fold_workers, |fold_no| {
            let fold = &folds[fold_no];
            let train = data.subset(&fold.train);
            let forest = RandomForest::fit_threaded(
                &train,
                config,
                seed.wrapping_add(fold_no as u64 + 1),
                fit_threads,
            );
            fold.test
                .iter()
                .map(|&i| {
                    let proba = forest.predict_proba(data.row(i));
                    (i, proba[positive], crate::tree::argmax(&proba))
                })
                .collect()
        });
    let mut scores = vec![0.0f64; data.len()];
    let mut predictions = vec![0usize; data.len()];
    for (i, score, pred) in per_fold.into_iter().flatten() {
        scores[i] = score;
        predictions[i] = pred;
    }
    let confusion = Confusion::from_predictions(data.labels(), &predictions, positive);
    let bool_labels: Vec<bool> = data.labels().iter().map(|&l| l == positive).collect();
    let roc_area = roc_auc(&scores, &bool_labels);
    CvResult { confusion, scores, predictions, roc_area }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn folds_partition_all_samples() {
        let labels: Vec<usize> = (0..53).map(|i| i % 2).collect();
        let folds = stratified_kfold(&labels, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..53).collect::<Vec<_>>());
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 53);
            // No overlap.
            for &t in &fold.test {
                assert!(!fold.train.contains(&t));
            }
        }
    }

    #[test]
    fn folds_are_stratified() {
        // 80/20 imbalance; every fold's test split must keep roughly it.
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i < 20)).collect();
        for fold in stratified_kfold(&labels, 5, 3) {
            let pos = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(pos, 4, "each fold should hold 4 of the 20 positives");
        }
    }

    #[test]
    fn folds_deterministic_by_seed() {
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let a = stratified_kfold(&labels, 3, 9);
        let b = stratified_kfold(&labels, 3, 9);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.test, fb.test);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_fold() {
        stratified_kfold(&[0, 1], 1, 0);
    }

    #[test]
    fn cross_validation_learns_separable_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut data = Dataset::new(vec!["x".into(), "y".into()], 2);
        for _ in 0..120 {
            let cls = rng.gen_range(0..2usize);
            let center = if cls == 0 { 0.0 } else { 4.0 };
            data.push(
                vec![center + rng.gen_range(-1.0..1.0), center + rng.gen_range(-1.0..1.0)],
                cls,
            );
        }
        let result = cross_validate(&data, 5, &ForestConfig::default(), 1, 7);
        assert!(result.confusion.accuracy() > 0.95, "acc {}", result.confusion.accuracy());
        assert!(result.roc_area > 0.98, "auc {}", result.roc_area);
        assert_eq!(result.scores.len(), data.len());
        assert_eq!(result.predictions.len(), data.len());
    }

    #[test]
    fn cross_validation_is_thread_count_invariant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut data = Dataset::new(vec!["x".into()], 2);
        for _ in 0..60 {
            let cls = rng.gen_range(0..2usize);
            let center = if cls == 0 { 0.0 } else { 2.0 };
            data.push(vec![center + rng.gen_range(-1.5..1.5)], cls);
        }
        let config = ForestConfig::default();
        let reference = cross_validate_threaded(&data, 5, &config, 1, 11, 1);
        for threads in [2, 3, 8] {
            let result = cross_validate_threaded(&data, 5, &config, 1, 11, threads);
            assert_eq!(result.scores, reference.scores, "{threads} threads");
            assert_eq!(result.predictions, reference.predictions, "{threads} threads");
            assert_eq!(result.roc_area, reference.roc_area, "{threads} threads");
        }
    }
}
