//! Deterministic scoped-thread worker pool for the training and scoring
//! hot paths.
//!
//! The design constraint is **thread-count invariance**: any computation
//! run through this module must produce bit-identical results for 1, 2,
//! or N worker threads. That is achieved by
//!
//! 1. indexing the work — every task is identified by its position in the
//!    input, and results are returned in input order regardless of which
//!    worker ran them or when they finished, and
//! 2. deriving per-task randomness from `(seed, index)` with the SplitMix64
//!    finalizer ([`derive_seed`]) instead of threading one sequential RNG
//!    stream through all tasks.
//!
//! Built on `std::thread::scope` only — the workspace vendors its external
//! dependencies as shims, so no rayon/crossbeam.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the caller does not specify:
/// the machine's available parallelism (1 when it cannot be queried).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "auto"
/// ([`default_threads`]), anything else is used as given.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Derives an independent 64-bit seed for task `index` from a base `seed`
/// using the SplitMix64 finalizer. Consecutive indices produce
/// decorrelated seeds, and the mapping depends only on `(seed, index)` —
/// never on scheduling — which is what makes parallel training
/// deterministic.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `task(0..n_tasks)` across up to `threads` scoped worker threads
/// and returns the results **in index order**.
///
/// Work is distributed dynamically, but in *chunks* of consecutive
/// indices rather than one index per atomic claim: each worker grabs
/// `max(1, n_tasks / (threads * 4))` tasks at a time, so fine-grained
/// workloads don't serialize on the cursor's cache line while uneven
/// task costs still balance (4 chunks per worker on average leaves room
/// for stealing). The output is independent of the schedule: slot `i`
/// always holds `task(i)`. With `threads <= 1` (or a single task) the
/// tasks run inline on the caller's thread — no spawn overhead.
///
/// # Panics
///
/// Propagates the first worker panic after all workers have stopped.
pub fn run_indexed<T, F>(n_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n_tasks);
    if threads <= 1 {
        return (0..n_tasks).map(task).collect();
    }
    let chunk = (n_tasks / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let task = &task;
    let cursor = &cursor;
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n_tasks {
                            break;
                        }
                        for i in start..(start + chunk).min(n_tasks) {
                            local.push((i, task(i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    for (i, value) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} ran twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} never ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_task_costs_still_map_correctly() {
        // Tasks sleep inversely to index so late indices finish first.
        let out = run_indexed(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 50));
            i + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_is_stable_and_decorrelated() {
        // Stable: pure function of (seed, index).
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        // Distinct across both arguments.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                seen.insert(derive_seed(seed, index));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "no collisions across a small grid");
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        run_indexed(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
