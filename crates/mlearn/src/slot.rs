//! Atomic model slot for zero-downtime hot-reload.
//!
//! A [`ModelSlot`] holds the currently deployed model behind an
//! `ArcSwap`-style handle: readers take a cheap snapshot (one `Arc`
//! clone under a short critical section) and keep scoring against that
//! immutable model for as long as they hold the `Arc`, while a writer
//! swaps in a replacement at any time. A swap never blocks readers for
//! longer than the pointer exchange, never invalidates a model a reader
//! is mid-inference on, and bumps a monotone version so every downstream
//! decision (an alert, a verdict) is attributable to exactly one model
//! generation.
//!
//! The slot is generic so the detector can wrap its classifier without
//! this crate depending on it.

use std::sync::{Arc, Mutex};

/// Shared, swappable handle to the current model. Cloning the slot
/// shares it: all clones observe the same swaps.
#[derive(Debug)]
pub struct ModelSlot<T> {
    current: Arc<Mutex<(Arc<T>, u64)>>,
}

impl<T> Clone for ModelSlot<T> {
    fn clone(&self) -> Self {
        ModelSlot { current: Arc::clone(&self.current) }
    }
}

impl<T> ModelSlot<T> {
    /// Wraps the initial model at version 1.
    pub fn new(model: T) -> Self {
        Self::with_version(model, 1)
    }

    /// Wraps a model at an explicit version — used when restoring a
    /// snapshot so post-restore decisions continue the generation
    /// numbering of the interrupted run.
    pub fn with_version(model: T, version: u64) -> Self {
        ModelSlot { current: Arc::new(Mutex::new((Arc::new(model), version.max(1)))) }
    }

    /// Snapshot of the deployed model and its version. The returned
    /// `Arc` stays valid across any number of subsequent swaps.
    pub fn load(&self) -> (Arc<T>, u64) {
        let guard = self.current.lock().expect("model slot poisoned");
        (Arc::clone(&guard.0), guard.1)
    }

    /// Atomically replaces the deployed model; returns the new version.
    /// In-flight readers keep the model they loaded; the next `load`
    /// observes the replacement.
    pub fn swap(&self, model: T) -> u64 {
        let mut guard = self.current.lock().expect("model slot poisoned");
        let version = guard.1 + 1;
        *guard = (Arc::new(model), version);
        version
    }

    /// Overrides the version without counting a reload (snapshot
    /// restore only).
    pub fn force_version(&self, version: u64) {
        let mut guard = self.current.lock().expect("model slot poisoned");
        guard.1 = version.max(1);
    }

    /// Current model version.
    pub fn version(&self) -> u64 {
        self.current.lock().expect("model slot poisoned").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_bumps_version_and_readers_keep_their_snapshot() {
        let slot = ModelSlot::new(vec![1, 2, 3]);
        let (old, v1) = slot.load();
        assert_eq!(v1, 1);
        let v2 = slot.swap(vec![9]);
        assert_eq!(v2, 2);
        // The pre-swap snapshot is untouched; a fresh load sees the new model.
        assert_eq!(*old, vec![1, 2, 3]);
        let (new, v) = slot.load();
        assert_eq!((&*new, v), (&vec![9], 2));
    }

    #[test]
    fn clones_share_the_slot() {
        let a = ModelSlot::new(0u32);
        let b = a.clone();
        b.swap(7);
        assert_eq!(*a.load().0, 7);
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn swaps_race_safely_across_threads() {
        let slot = ModelSlot::new(0usize);
        std::thread::scope(|scope| {
            let reader = slot.clone();
            scope.spawn(move || {
                for _ in 0..1000 {
                    let (m, v) = reader.load();
                    // A loaded model always matches its version tag.
                    assert_eq!(*m + 1, v as usize);
                }
            });
            let writer = slot.clone();
            scope.spawn(move || {
                for i in 1..100 {
                    assert_eq!(writer.swap(i), i as u64 + 1);
                }
            });
        });
        assert_eq!(slot.version(), 100);
    }
}
