//! Binary-classification metrics: confusion counts, rates, F-score, ROC
//! curves, and AUC.

use serde::{Deserialize, Serialize};

/// Confusion counts for a binary problem with a designated positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Positive samples predicted positive.
    pub tp: usize,
    /// Negative samples predicted positive.
    pub fp: usize,
    /// Negative samples predicted negative.
    pub tn: usize,
    /// Positive samples predicted negative.
    pub fn_: usize,
}

impl Confusion {
    /// Builds confusion counts from parallel label/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    pub fn from_predictions(labels: &[usize], predictions: &[usize], positive: usize) -> Self {
        assert_eq!(labels.len(), predictions.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&l, &p) in labels.iter().zip(predictions) {
            match (l == positive, p == positive) {
                (true, true) => c.tp += 1,
                (true, false) => c.fn_ += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Builds confusion counts from `(label, predicted)` outcome pairs —
    /// the natural shape for episode-level scoring, where each unit of
    /// account is "was this conversation alerted on" rather than a raw
    /// score vector.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = (bool, bool)>) -> Self {
        let mut c = Confusion::default();
        for (label, predicted) in outcomes {
            c.record(label, predicted);
        }
        c
    }

    /// Builds confusion counts by thresholding scores at `threshold`
    /// (score ≥ threshold ⇒ predicted positive).
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    pub fn from_scores(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "length mismatch");
        Confusion::from_outcomes(
            labels.iter().zip(scores).map(|(&l, &s)| (l, s >= threshold)),
        )
    }

    /// Records a single `(label, predicted)` outcome.
    pub fn record(&mut self, label: bool, predicted: bool) {
        match (label, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// True-positive rate (recall): `tp / (tp + fn)`.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate: `fp / (fp + tn)`.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Precision: `tp / (tp + fp)`.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold at or above which samples are called positive.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
}

/// Computes the ROC curve from positive-class scores and true labels
/// (`true` = positive). Points are ordered by increasing FPR, starting at
/// `(0,0)` and ending at `(1,1)`.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "need at least one sample");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let pos_total = labels.iter().filter(|&&l| l).count();
    let neg_total = labels.len() - pos_total;
    let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume all samples tied at this score.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: ratio(fp, neg_total),
            tpr: ratio(tp, pos_total),
        });
    }
    points
}

/// Area under the ROC curve by trapezoidal integration.
pub fn auc(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0)
        .sum()
}

/// Convenience: AUC directly from scores and labels.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    auc(&roc_curve(scores, labels))
}

/// Picks the smallest score threshold whose false-positive rate does not
/// exceed `target_fpr` — the deployment knob for "alert at most X % of
/// benign conversations". Returns the threshold and the operating point's
/// `(fpr, tpr)`.
///
/// Returns `None` when no achievable operating point fits the budget —
/// that is, when even the highest observed score belongs to a negative
/// sample that would blow the FPR target. (Previously this case silently
/// returned the curve's `(∞, 0, 0)` start point, a "never alert"
/// calibration indistinguishable from a legitimate one.)
///
/// # Panics
///
/// Panics when the inputs are empty or mismatched (see [`roc_curve`]).
pub fn threshold_for_fpr(
    scores: &[f64],
    labels: &[bool],
    target_fpr: f64,
) -> Option<(f64, f64, f64)> {
    let curve = roc_curve(scores, labels);
    // Points are ordered by descending threshold / ascending FPR; take the
    // last point still within budget (maximizes TPR). The curve's first
    // point is the synthetic (∞, 0, 0) start: selecting it means no real
    // threshold fits the budget, which callers must handle explicitly.
    let point = curve
        .iter()
        .rfind(|p| p.fpr <= target_fpr)
        .copied()
        .unwrap_or(curve[0]);
    if point.threshold.is_infinite() && point.tpr == 0.0 {
        return None;
    }
    Some((point.threshold, point.fpr, point.tpr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_rates() {
        let labels = [1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
        let preds = [1, 1, 0, 0, 0, 0, 0, 0, 0, 1];
        let c = Confusion::from_predictions(&labels, &preds, 1);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (2, 1, 1, 6));
        assert!((c.tpr() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr() - 1.0 / 7.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn degenerate_confusions_do_not_divide_by_zero() {
        let c = Confusion::default();
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_separation_auc_is_one() {
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        let labels = [true, true, true, false, false, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_auc_is_zero() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [true, true, false, false];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_ties_auc_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints() {
        let scores = [0.9, 0.1];
        let labels = [true, false];
        let curve = roc_curve(&scores, &labels);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn curve_is_monotonic() {
        let scores = [0.9, 0.85, 0.6, 0.55, 0.5, 0.4, 0.3];
        let labels = [true, false, true, true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn threshold_calibration_respects_fpr_budget() {
        let scores = [0.95, 0.9, 0.8, 0.7, 0.6, 0.55, 0.4, 0.3, 0.2, 0.1];
        let labels = [true, true, true, false, true, true, false, false, false, false];
        let (thr, fpr, tpr) = threshold_for_fpr(&scores, &labels, 0.25).expect("achievable");
        assert!(fpr <= 0.25, "fpr {fpr}");
        // Budget of 1 FP out of 4 negatives: threshold 0.55 catches all 5
        // positives at fpr 0.25.
        assert!((tpr - 1.0).abs() < 1e-12, "tpr {tpr}");
        assert!((thr - 0.55).abs() < 1e-12, "thr {thr}");
        // Zero budget: only thresholds above every negative.
        let (_, fpr0, tpr0) = threshold_for_fpr(&scores, &labels, 0.0).expect("achievable");
        assert_eq!(fpr0, 0.0);
        assert!((tpr0 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unachievable_fpr_budget_is_signaled_not_silent() {
        // Every negative outscores every positive: any real threshold that
        // admits a positive admits all negatives first. With a tight
        // budget there is no valid operating point — the old code returned
        // the curve's (∞, 0, 0) start as if it were a calibration.
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2];
        let labels = [false, false, false, true, true];
        assert_eq!(threshold_for_fpr(&scores, &labels, 0.0), None);
        assert_eq!(threshold_for_fpr(&scores, &labels, 0.2), None);
        // A generous budget does admit an operating point again.
        let (thr, fpr, tpr) = threshold_for_fpr(&scores, &labels, 1.0).expect("achievable");
        assert!(thr.is_finite());
        assert!(fpr <= 1.0 && tpr > 0.0);
    }

    #[test]
    fn outcome_and_score_constructors_agree() {
        let scores = [0.9, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        let from_scores = Confusion::from_scores(&scores, &labels, 0.5);
        let from_outcomes = Confusion::from_outcomes(
            labels.iter().zip(&scores).map(|(&l, &s)| (l, s >= 0.5)),
        );
        assert_eq!(from_scores, from_outcomes);
        assert_eq!(from_scores.tp, 1);
        assert_eq!(from_scores.fn_, 1);
        assert_eq!(from_scores.fp, 1);
        assert_eq!(from_scores.tn, 1);
        let mut incremental = Confusion::default();
        incremental.record(true, true);
        incremental.record(false, false);
        assert_eq!(incremental.tpr(), 1.0);
        assert_eq!(incremental.fpr(), 0.0);
    }

    #[test]
    fn known_auc_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs ranked correctly
        // 3 of 4 → AUC = 0.75.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }
}
