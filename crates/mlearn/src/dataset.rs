//! Feature-matrix container with named columns and integer class labels.

use serde::{Deserialize, Serialize};

/// A supervised dataset: row-major feature matrix plus one class label per
/// row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names and class
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero or no feature is named.
    pub fn new(feature_names: Vec<String>, n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        assert!(!feature_names.is_empty(), "need at least one feature");
        Dataset { feature_names, rows: Vec::new(), labels: Vec::new(), n_classes }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics when the row width or the label is out of range, or when a
    /// feature value is NaN (NaNs would silently poison split search).
    pub fn push(&mut self, row: Vec<f64>, label: usize) {
        assert_eq!(row.len(), self.feature_names.len(), "row width mismatch");
        assert!(label < self.n_classes, "label {label} out of range");
        assert!(row.iter().all(|v| !v.is_nan()), "NaN feature value");
        self.rows.push(row);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature names in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Label of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the rows at `indices` (cloned), preserving
    /// order and duplicates — the shape bootstrap sampling needs.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// A new dataset keeping only the feature columns at `columns` (in the
    /// given order). Used for the paper's feature-group ablation.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds or `columns` is empty.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        assert!(!columns.is_empty(), "need at least one column");
        Dataset {
            feature_names: columns.iter().map(|&c| self.feature_names[c].clone()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| columns.iter().map(|&c| r[c]).collect())
                .collect(),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        d.push(vec![1.0, 10.0], 0);
        d.push(vec![2.0, 20.0], 1);
        d.push(vec![3.0, 30.0], 1);
        d
    }

    #[test]
    fn push_and_access() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.class_counts(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_is_validated() {
        sample().push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn label_is_validated() {
        sample().push(vec![0.0, 0.0], 5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        sample().push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    fn subset_preserves_duplicates_and_order() {
        let d = sample();
        let s = d.subset(&[2, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert_eq!(s.row(1), &[1.0, 10.0]);
        assert_eq!(s.labels(), &[1, 0, 1]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = sample();
        let p = d.select_features(&[1]);
        assert_eq!(p.n_features(), 1);
        assert_eq!(p.feature_names(), ["b"]);
        assert_eq!(p.row(0), &[10.0]);
        assert_eq!(p.labels(), d.labels());
    }
}
