//! Learning substrate for the DynaMiner reproduction.
//!
//! Implements, from scratch, the ensemble random forest (ERF) classifier
//! the paper trains on its 37 web-conversation-graph features, plus the
//! evaluation machinery its tables require:
//!
//! * [`dataset`] — feature-matrix container with named columns,
//! * [`tree`] — CART decision trees (Gini impurity, random feature subsets),
//! * [`forest`] — bootstrap ensembles combining trees by **averaging their
//!   probabilistic predictions** (the paper stresses this over majority
//!   voting; both are available so the choice can be ablated),
//! * [`metrics`] — confusion counts, TPR/FPR/F-score, ROC curves and AUC,
//! * [`crossval`] — stratified k-fold cross-validation,
//! * [`rank`] — gain-ratio feature ranking with per-fold rank averaging
//!   (the paper's Table IV methodology),
//! * [`parallel`] — deterministic scoped-thread worker pool; forest
//!   training, cross-validation, and batched scoring parallelize through
//!   it with bit-identical results at any thread count,
//! * [`slot`] — atomic model slot for zero-downtime hot-reload, with a
//!   monotone version so every decision is attributable to one model
//!   generation.
//!
//! # Example
//!
//! ```
//! use mlearn::dataset::Dataset;
//! use mlearn::forest::{ForestConfig, RandomForest};
//!
//! let mut data = Dataset::new(vec!["x".into()], 2);
//! for i in 0..20 {
//!     let v = i as f64;
//!     data.push(vec![v], usize::from(v >= 10.0));
//! }
//! let forest = RandomForest::fit(&data, &ForestConfig::default(), 42);
//! assert_eq!(forest.predict(&[2.0]), 0);
//! assert_eq!(forest.predict(&[15.0]), 1);
//! ```

pub mod crossval;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod parallel;
pub mod rank;
pub mod slot;
pub mod tree;
