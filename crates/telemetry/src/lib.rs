//! Pipeline telemetry: lock-free counters, gauges and fixed-bucket
//! latency histograms behind cheap cloneable handles, collected in a
//! [`Registry`] that renders both Prometheus text exposition and a
//! serializable JSON [`Snapshot`].
//!
//! Design constraints, in order:
//!
//! * **Hot-path cost.** A metric handle is an `Arc` around atomics;
//!   `inc`/`observe` are a handful of relaxed atomic adds and never
//!   touch a lock. The registry mutex is taken only at registration
//!   and snapshot time.
//! * **Determinism.** All histogram state is integer (`u64`
//!   observations, `u64` sums). Floating-point accumulation is
//!   order-dependent, which would make snapshots vary with thread
//!   count and interleaving; integer adds are associative, so a
//!   snapshot taken after N observations is identical no matter how
//!   many threads produced them. Latencies are recorded in integer
//!   nanoseconds.
//! * **Mergeability.** [`LocalHistogram`] is a plain (non-atomic)
//!   shard a worker can fill privately and merge into the shared
//!   histogram once; merge is associative and commutative, so a
//!   parallel pool can combine per-thread shards in any grouping and
//!   get the same totals.
//!
//! Naming follows Prometheus conventions: counters end in `_total`,
//! latency histograms in `_ns` (base unit recorded in the name since
//! the values are integers, not seconds).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Counters are monotone: there is deliberately no way to
    /// subtract or reset through the public API.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (e.g. live conversation count).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in nanoseconds: 1 µs → 5 s,
/// roughly logarithmic. Covers everything from a single feature
/// extraction (~µs) to a full forest fit (~s).
pub const LATENCY_BOUNDS_NS: [u64; 20] = [
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// Fixed-bucket histogram over `u64` observations. Buckets hold
/// non-cumulative counts internally; `bounds[i]` is the inclusive
/// upper bound of bucket `i` and a final implicit `+Inf` bucket
/// catches the rest (`buckets.len() == bounds.len() + 1`).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// `bounds` must be strictly increasing; panics otherwise (a
    /// registration-time programming error, not a runtime condition).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    pub fn with_latency_bounds() -> Self {
        Self::new(&LATENCY_BOUNDS_NS)
    }

    fn bucket_index(bounds: &[u64], v: u64) -> usize {
        // partition_point: first bound >= v fails `< v`, so this is
        // the index of the first bucket whose inclusive bound admits v
        // (== bounds.len() for the +Inf bucket).
        bounds.partition_point(|&b| b < v)
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = Self::bucket_index(&self.inner.bounds, v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observe the elapsed time since `start`, in nanoseconds.
    #[inline]
    pub fn observe_since(&self, start: Instant) {
        let ns = start.elapsed().as_nanos();
        self.observe(u64::try_from(ns).unwrap_or(u64::MAX));
    }

    /// Fold a privately-filled shard in. One atomic add per non-empty
    /// bucket; the shard's bounds must match (panics otherwise).
    pub fn record_local(&self, shard: &LocalHistogram) {
        assert_eq!(
            self.inner.bounds, shard.bounds,
            "histogram merge requires identical bounds"
        );
        for (cell, &n) in self.inner.buckets.iter().zip(&shard.buckets) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(shard.count, Ordering::Relaxed);
        self.inner.sum.fetch_add(shard.sum, Ordering::Relaxed);
    }

    /// Fold a point-in-time snapshot of another histogram in. One
    /// atomic add per non-empty bucket; bounds must match (panics
    /// otherwise). This is how an aggregating registry absorbs
    /// per-shard registries whose live handles it never held.
    pub fn record_snapshot(&self, snap: &HistogramSnapshot) {
        assert_eq!(
            self.inner.bounds, snap.bounds,
            "histogram merge requires identical bounds"
        );
        for (cell, &n) in self.inner.buckets.iter().zip(&snap.buckets) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(snap.count, Ordering::Relaxed);
        self.inner.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// Non-atomic histogram shard for single-threaded accumulation (one
/// per worker), merged into a shared [`Histogram`] or another shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalHistogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl LocalHistogram {
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// A shard shaped like `hist`, ready to be `record_local`ed back.
    pub fn shard_of(hist: &Histogram) -> Self {
        Self::new(&hist.inner.bounds)
    }

    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = Histogram::bucket_index(&self.bounds, v);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Associative, commutative merge: bucket-wise `+`. Panics on
    /// bound mismatch.
    pub fn merge(&mut self, other: &LocalHistogram) {
        assert_eq!(self.bounds, other.bounds, "histogram merge requires identical bounds");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// Point-in-time histogram state inside a [`Snapshot`]. `buckets` are
/// non-cumulative and one longer than `bounds` (+Inf last).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Associative, commutative merge; panics on bound mismatch.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram merge requires identical bounds");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Serializable point-in-time view of a registry. Maps are sorted by
/// metric name, so equal telemetry states serialize byte-identically —
/// the property the golden-snapshot test pins.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Merge another snapshot in: counters and histogram buckets add,
    /// gauges take the other side's value (last-writer semantics for
    /// instantaneous values).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram observation count, 0 when absent.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.count)
    }
}

#[derive(Debug)]
enum Metric {
    Counter { help: String, handle: Counter },
    Gauge { help: String, handle: Gauge },
    Histogram { help: String, handle: Histogram },
}

/// Named collection of metrics. Cloning shares the collection;
/// registration is idempotent (same name + kind returns the existing
/// handle, so independently-constructed pipeline stages aggregate into
/// the same cells). Registering a name under a different kind panics —
/// that is a wiring bug, not a runtime condition.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter { help: help.to_string(), handle: Counter::new() })
        {
            Metric::Counter { handle, .. } => handle.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge { help: help.to_string(), handle: Gauge::new() })
        {
            Metric::Gauge { handle, .. } => handle.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// Register a histogram with explicit bucket bounds. Re-registering
    /// must use identical bounds (panics otherwise).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics.entry(name.to_string()).or_insert_with(|| Metric::Histogram {
            help: help.to_string(),
            handle: Histogram::new(bounds),
        }) {
            Metric::Histogram { handle, .. } => {
                assert_eq!(
                    handle.inner.bounds, bounds,
                    "metric {name:?} re-registered with different bounds"
                );
                handle.clone()
            }
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// Latency histogram in nanoseconds with the default bounds.
    pub fn latency_histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram(name, help, &LATENCY_BOUNDS_NS)
    }

    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter { handle, .. } => {
                    snap.counters.insert(name.clone(), handle.get());
                }
                Metric::Gauge { handle, .. } => {
                    snap.gauges.insert(name.clone(), handle.get());
                }
                Metric::Histogram { handle, .. } => {
                    snap.histograms.insert(name.clone(), handle.snapshot());
                }
            }
        }
        snap
    }

    /// Fold another registry's snapshot into this registry's live
    /// metrics: counters and histogram buckets add, and — unlike
    /// [`Snapshot::merge`]'s last-writer rule — gauges add too, because
    /// the caller is aggregating disjoint shards whose live state sums
    /// (N shards' live-conversation gauges are N disjoint populations).
    /// Metrics absent here are registered on the fly; call once per
    /// shard, not periodically, or monotone totals double-count.
    pub fn absorb(&self, snap: &Snapshot) {
        for (name, v) in &snap.counters {
            self.counter(name, "").add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name, "").add(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name, "", &h.bounds).record_snapshot(h);
        }
    }

    /// Prometheus text exposition (format version 0.0.4): `# HELP` /
    /// `# TYPE` preamble per metric, cumulative `_bucket{le="..."}`
    /// series plus `_sum` / `_count` for histograms.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter { help, handle } => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", handle.get());
                }
                Metric::Gauge { help, handle } => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", handle.get());
                }
                Metric::Histogram { help, handle } => {
                    let snap = handle.snapshot();
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, n) in snap.buckets.iter().enumerate() {
                        cumulative += n;
                        match snap.bounds.get(i) {
                            Some(bound) => {
                                let _ = writeln!(
                                    out,
                                    "{name}_bucket{{le=\"{bound}\"}} {cumulative}"
                                );
                            }
                            None => {
                                let _ = writeln!(
                                    out,
                                    "{name}_bucket{{le=\"+Inf\"}} {cumulative}"
                                );
                            }
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter { .. } => "counter",
        Metric::Gauge { .. } => "gauge",
        Metric::Histogram { .. } => "histogram",
    }
}

/// CPU time consumed by the *calling thread*, in nanoseconds.
///
/// Wall-clock speedups on a shared or single-core container say nothing
/// about whether parallel code duplicates work; per-thread CPU time does
/// (`CLOCK_THREAD_CPUTIME_ID`: the kernel's per-thread execution-time
/// accounting, unaffected by preemption or other tenants). The workspace
/// links no libc, so the clock is read with a raw `clock_gettime`
/// syscall. On platforms where that isn't available this returns 0;
/// callers treat 0 as "unmeasured" and skip CPU-derived metrics.
pub fn thread_cpu_ns() -> u64 {
    clock_ns(3) // CLOCK_THREAD_CPUTIME_ID
}

/// CPU time consumed by the *whole process* (all threads, live and
/// exited), in nanoseconds. Same caveats as [`thread_cpu_ns`]; returns 0
/// where the clock cannot be read. Deltas around a parallel region give
/// the total CPU the region burned across every worker — the denominator
/// of an honest parallel-efficiency number on a time-sliced host.
pub fn process_cpu_ns() -> u64 {
    clock_ns(2) // CLOCK_PROCESS_CPUTIME_ID
}

#[allow(unused_variables)]
fn clock_ns(clock_id: u64) -> u64 {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_CLOCK_GETTIME: u64 = 228;
        let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_CLOCK_GETTIME as i64 => ret,
                in("rdi") clock_id,
                in("rsi") ts.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret == 0 {
            return (ts[0] as u64).saturating_mul(1_000_000_000) + ts[1] as u64;
        }
        0
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_advances_with_work() {
        let start = thread_cpu_ns();
        if start == 0 {
            return; // unmeasured platform
        }
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let end = thread_cpu_ns();
        assert!(end > start, "CPU clock must advance: {start} -> {end}");
    }

    #[test]
    fn process_cpu_clock_covers_the_calling_thread() {
        let t = thread_cpu_ns();
        let p = process_cpu_ns();
        if t == 0 || p == 0 {
            return; // unmeasured platform
        }
        // The process clock aggregates every thread, so it can never sit
        // below the calling thread's own clock (modulo the read gap).
        assert!(p.saturating_add(1_000_000) >= t, "process {p} < thread {t}");
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("events_total", "events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration shares the cell.
        assert_eq!(reg.counter("events_total", "events").get(), 5);
        let g = reg.gauge("live", "live items");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events_total"), 5);
        assert_eq!(snap.gauges["live"], 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn histogram_buckets_inclusive_upper_bound() {
        let h = Histogram::new(&[10, 20]);
        h.observe(5); // bucket 0 (<= 10)
        h.observe(10); // bucket 0, inclusive
        h.observe(11); // bucket 1
        h.observe(21); // +Inf
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 5 + 10 + 11 + 21);
    }

    #[test]
    fn local_shard_merges_into_shared() {
        let h = Histogram::new(&[100]);
        let mut a = LocalHistogram::shard_of(&h);
        let mut b = LocalHistogram::shard_of(&h);
        a.observe(50);
        b.observe(150);
        b.observe(1);
        h.record_local(&a);
        h.record_local(&b);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 201);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 201);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("ingest_packets_read_total", "packets").add(3);
        let h = reg.histogram("stage_ns", "stage latency", &[10, 100]);
        h.observe(7);
        h.observe(500);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ingest_packets_read_total counter"));
        assert!(text.contains("ingest_packets_read_total 3"));
        assert!(text.contains("# TYPE stage_ns histogram"));
        assert!(text.contains("stage_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("stage_ns_bucket{le=\"100\"} 1"));
        assert!(text.contains("stage_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("stage_ns_sum 507"));
        assert!(text.contains("stage_ns_count 2"));
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let reg_a = Registry::new();
        reg_a.counter("c_total", "").add(2);
        reg_a.histogram("h", "", &[10]).observe(5);
        let reg_b = Registry::new();
        reg_b.counter("c_total", "").add(3);
        reg_b.counter("only_b_total", "").add(1);
        reg_b.histogram("h", "", &[10]).observe(50);
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counter("c_total"), 5);
        assert_eq!(merged.counter("only_b_total"), 1);
        assert_eq!(merged.histograms["h"].buckets, vec![1, 1]);
        assert_eq!(merged.histograms["h"].count, 2);
    }

    #[test]
    fn absorb_sums_counters_and_gauges_across_shards() {
        let total = Registry::new();
        total.counter("alerts_total", "alerts").add(1);
        total.gauge("live", "live").set(3);
        for shard in 0..2 {
            let reg = Registry::new();
            reg.counter("alerts_total", "alerts").add(2);
            reg.gauge("live", "live").set(5 + shard);
            reg.histogram("lat_ns", "", &[10]).observe(4);
            total.absorb(&reg.snapshot());
        }
        let snap = total.snapshot();
        assert_eq!(snap.counter("alerts_total"), 5);
        assert_eq!(snap.gauges["live"], 3 + 5 + 6);
        assert_eq!(snap.histograms["lat_ns"].count, 2);
        assert_eq!(snap.histograms["lat_ns"].buckets, vec![2, 0]);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = Registry::new();
        reg.counter("a_total", "").add(9);
        reg.gauge("g", "").set(-4);
        reg.latency_histogram("lat_ns", "").observe(123_456);
        let snap = reg.snapshot();
        let value = serde::to_value(&snap).unwrap();
        let back: Snapshot = serde::from_value(value).unwrap();
        assert_eq!(back, snap);
    }
}
