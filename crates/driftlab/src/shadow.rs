//! The shadow-model loop: online retraining with champion/challenger
//! promotion.
//!
//! After every epoch the retrainer fits a *challenger* forest on a
//! sliding window of recent labeled episodes, replays the epoch through
//! two fresh, observation-only detectors — one holding the live
//! *champion* model, one the challenger — and promotes through
//! [`StreamEngine::reload_model`](streamd::StreamEngine::reload_model)
//! only when the [`PromotionPolicy`] says the challenger's recall gain
//! is worth its false-positive cost. Every decision lands in an
//! auditable [`LedgerEntry`], and because promotion bumps the engine's
//! [`ModelSlot`](mlearn::slot::ModelSlot) generation, every subsequent
//! alert carries the new `model_version` — the curve and the ledger
//! cross-check each other.

use dynaminer::classifier::{build_dataset_parallel, Classifier, FeatureSelection};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use mlearn::forest::ForestConfig;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

use crate::decay::confusion;
use crate::schedule::EpochBatch;

/// When a challenger replaces the champion.
///
/// `decide` is monotone in both arguments by construction: if a
/// challenger is promoted at recall margin `m`, it is promoted at every
/// margin above `m` (and symmetrically for the false-positive
/// regression) — the property the promotion proptest pins.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PromotionPolicy {
    /// Minimum recall gain (challenger − champion) required to promote.
    pub min_recall_gain: f64,
    /// Maximum tolerated false-positive-rate regression
    /// (challenger − champion).
    pub max_fpr_regression: f64,
}

impl PromotionPolicy {
    /// A policy that never promotes: the shadow loop still trains and
    /// scores challengers (and writes the ledger), but the live model
    /// is never touched. Used by the differential test to show the
    /// shadow path is observation-only.
    pub const NEVER: PromotionPolicy =
        PromotionPolicy { min_recall_gain: f64::INFINITY, max_fpr_regression: f64::INFINITY };

    /// The promotion decision: pure, total, monotone.
    pub fn decide(&self, recall_margin: f64, fpr_regression: f64) -> bool {
        recall_margin >= self.min_recall_gain && fpr_regression <= self.max_fpr_regression
    }
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy { min_recall_gain: 0.02, max_fpr_regression: 0.02 }
    }
}

/// Shadow-retrainer knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetrainConfig {
    /// Promotion policy.
    pub policy: PromotionPolicy,
    /// Sliding window: how many recent epoch batches the challenger
    /// trains on.
    pub history_epochs: usize,
    /// Thread budget for challenger training and dataset building
    /// (`0` = all cores; training is bit-identical at any count).
    pub threads: usize,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig { policy: PromotionPolicy::default(), history_epochs: 3, threads: 0 }
    }
}

/// One row of the promotion ledger: the full evidence behind a
/// promote/hold decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Epoch whose traffic the shadow evaluation replayed.
    pub epoch: usize,
    /// Champion model generation at decision time.
    pub champion_version: u64,
    /// Champion recall on the epoch replay.
    pub champion_recall: f64,
    /// Champion false-positive rate on the epoch replay.
    pub champion_fpr: f64,
    /// Challenger recall on the epoch replay.
    pub challenger_recall: f64,
    /// Challenger false-positive rate on the epoch replay.
    pub challenger_fpr: f64,
    /// `challenger_recall − champion_recall`.
    pub recall_margin: f64,
    /// `challenger_fpr − champion_fpr`.
    pub fpr_regression: f64,
    /// Whether the policy promoted the challenger.
    pub promoted: bool,
    /// Engine model generation after the decision (== champion's when
    /// not promoted).
    pub model_version_after: u64,
}

/// Fits a challenger on a sliding window of recent epoch batches.
/// Deterministic: the dataset is built in batch-then-episode order and
/// the forest fit is bit-identical at any thread count.
pub fn fit_challenger(history: &[&EpochBatch], seed: u64, threads: usize) -> Classifier {
    let conversations: Vec<(&[HttpTransaction], bool)> = history
        .iter()
        .flat_map(|b| b.episodes.iter())
        .map(|ep| (ep.transactions.as_slice(), ep.is_infection()))
        .collect();
    let data = build_dataset_parallel(&conversations, threads);
    Classifier::fit_threaded(&data, FeatureSelection::All, &ForestConfig::default(), seed, threads)
}

/// Replays one epoch's stream through a fresh, observation-only
/// detector holding `model`, and scores the resulting alerts against
/// the batch's ground truth. Returns `(recall, fpr)`.
///
/// The detector is constructed and dropped inside this call — the
/// shadow evaluation can never touch live engine state.
pub fn shadow_eval(
    model: &Classifier,
    detector_config: &DetectorConfig,
    stream: &[HttpTransaction],
    batch: &EpochBatch,
) -> (f64, f64) {
    let mut detector = OnTheWireDetector::new(model.clone(), detector_config.clone());
    for tx in stream {
        detector.observe(tx);
    }
    let (caught, false_positives, _) = confusion(batch, detector.alerts());
    let infections = batch.infections().count();
    let benign = batch.benign().count();
    let frac = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    (frac(caught, infections), frac(false_positives, benign))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_is_monotone_and_total() {
        let p = PromotionPolicy { min_recall_gain: 0.05, max_fpr_regression: 0.01 };
        assert!(p.decide(0.05, 0.01));
        assert!(p.decide(0.2, -0.5));
        assert!(!p.decide(0.049, 0.0));
        assert!(!p.decide(0.5, 0.011));
        // Monotone: promotion at margin m implies promotion at m' > m.
        for m in [0.05, 0.1, 0.9] {
            if p.decide(m, 0.0) {
                assert!(p.decide(m + 0.01, 0.0));
            }
        }
    }

    #[test]
    fn never_policy_never_promotes() {
        assert!(!PromotionPolicy::NEVER.decide(1.0, -1.0));
        assert!(!PromotionPolicy::NEVER.decide(f64::MAX, f64::MIN));
    }

    #[test]
    fn nan_margins_hold_the_champion() {
        // A degenerate shadow replay (no episodes) must fail closed.
        assert!(!PromotionPolicy::default().decide(f64::NAN, 0.0));
        assert!(!PromotionPolicy::default().decide(1.0, f64::NAN));
    }
}
