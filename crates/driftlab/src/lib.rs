//! `driftlab` — the adversarial drift lab.
//!
//! The paper evaluates DynaMiner on a fixed corpus; its Sec. VII
//! evasion analysis asks what a *static* adversary costs the detector.
//! This crate asks the operational question instead: what happens to a
//! deployed detector as exploit-kit families **walk** — shortening
//! redirect chains, dressing infrastructure up as benign CDN traffic,
//! re-wrapping payloads, and layering on call-back cloaks, a little
//! more every epoch — and what does it take to keep up?
//!
//! Three pieces, one loop:
//!
//! * [`schedule`] — deterministic, seeded per-family parameter walks
//!   over simulated time, emitted as dated [`EpochBatch`]es,
//! * [`decay`] — the replay harness: each epoch streams through a
//!   persistent [`StreamEngine`], alerts are
//!   attributed back to episodes, and per-epoch recall / FPR / alert
//!   latency land in a [`DecayCurve`] — with [`vtsim`] scored alongside
//!   so the signature-lag advantage is quantified per epoch,
//! * [`shadow`] — the champion/challenger retraining loop: challengers
//!   fit on a sliding window of recent labeled traffic, scored on
//!   observation-only replays, and promoted through the engine's
//!   atomic model slot when a [`PromotionPolicy`] approves — every
//!   decision in an auditable promotion ledger, every alert stamped
//!   with the model generation that raised it.
//!
//! Everything is deterministic given the config: the decay-curve and
//! promotion-ledger goldens in `tests/golden/` pin byte-exact runs.
//! See DESIGN.md §15.

pub mod decay;
pub mod schedule;
pub mod shadow;

pub use decay::{DecayCurve, EpochMetrics};
pub use schedule::{DriftSchedule, DriftScheduleConfig, EpochBatch};
pub use shadow::{LedgerEntry, PromotionPolicy, RetrainConfig};

use std::collections::VecDeque;

use dynaminer::classifier::{build_dataset_parallel, Classifier, FeatureSelection};
use dynaminer::detector::{Alert, DetectorConfig};
use dynaminer::forensic::ForensicReport;
use mlearn::forest::ForestConfig;
use nettrace::HttpTransaction;
use streamd::{StreamConfig, StreamEngine};
use telemetry::Registry;
use vtsim::VirusTotalSim;

/// Seed-space salt for challenger training (disjoint from the corpus
/// and schedule streams).
const CHALLENGER_SALT: u64 = 1000;

/// Full drift-lab configuration.
#[derive(Debug, Clone)]
pub struct DriftLabConfig {
    /// The drift campaign to run.
    pub schedule: DriftScheduleConfig,
    /// Stream-engine shard count.
    pub shards: usize,
    /// Detector configuration for the live engine and every shadow
    /// replay.
    pub detector: DetectorConfig,
    /// Scale of the clean ground-truth corpus the champion pre-trains
    /// on (the "day-0" model).
    pub train_scale: f64,
    /// Shadow retraining; `None` runs the decay curve with the day-0
    /// champion pinned for the whole campaign.
    pub retrain: Option<RetrainConfig>,
}

impl Default for DriftLabConfig {
    fn default() -> Self {
        DriftLabConfig {
            schedule: DriftScheduleConfig::default(),
            shards: 1,
            detector: DetectorConfig::default(),
            train_scale: 0.05,
            retrain: None,
        }
    }
}

/// Everything a drift-lab run produces.
#[derive(Debug)]
pub struct DriftLabReport {
    /// Per-epoch detector and scanner metrics.
    pub curve: DecayCurve,
    /// Shadow-loop decisions (empty when retraining is off).
    pub ledger: Vec<LedgerEntry>,
    /// The live engine's alerts, per epoch, in merged `(ts, seq)` order.
    pub epoch_alerts: Vec<Vec<Alert>>,
    /// End-of-campaign forensic report from the persistent engine.
    pub report: ForensicReport,
}

/// Trains the day-0 champion on the clean ground-truth corpus.
pub fn train_champion(seed: u64, scale: f64, threads: usize) -> Classifier {
    let corpus = synthtraffic::ground_truth(seed, scale);
    let conversations: Vec<(&[HttpTransaction], bool)> = corpus
        .iter()
        .map(|ep| (ep.transactions.as_slice(), ep.is_infection()))
        .collect();
    let data = build_dataset_parallel(&conversations, threads);
    Classifier::fit_threaded(&data, FeatureSelection::All, &ForestConfig::default(), seed, threads)
}

/// Flattens an epoch batch into one `(ts, seq)`-ordered stream,
/// numbering from `*next_seq` so the sequence stays globally monotone
/// across the whole campaign (the engine's watermark and alert merge
/// both key on it).
pub fn epoch_stream(batch: &EpochBatch, next_seq: &mut u64) -> Vec<HttpTransaction> {
    let mut stream: Vec<HttpTransaction> = batch
        .episodes
        .iter()
        .flat_map(|ep| ep.transactions.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    for tx in &mut stream {
        tx.seq = *next_seq;
        *next_seq += 1;
    }
    stream
}

/// Runs the full drift campaign: replay every epoch through one
/// persistent engine, record the decay curve, and (when configured)
/// run the shadow-retraining loop between epochs.
///
/// Deterministic given `config`: same config ⇒ bit-identical alerts,
/// curve, and ledger at any shard or thread count.
pub fn run_drift_lab(config: &DriftLabConfig, registry: Option<&Registry>) -> DriftLabReport {
    let seed = config.schedule.seed;
    let threads = mlearn::parallel::resolve_threads(
        config.retrain.as_ref().map_or(0, |r| r.threads),
    );
    let schedule = DriftSchedule::new(config.schedule.clone());
    let vt = VirusTotalSim::with_default_engines(seed);
    let champion = train_champion(seed, config.train_scale, threads);

    let own_registry;
    let reg = match registry {
        Some(r) => r,
        None => {
            own_registry = Registry::new();
            &own_registry
        }
    };
    let stream_config = StreamConfig { shards: config.shards.max(1), ..StreamConfig::default() };
    let mut engine =
        StreamEngine::with_telemetry(champion, config.detector.clone(), stream_config, reg);

    let metrics = LabMetrics::new(reg);
    let mut curve = DecayCurve {
        seed,
        scale: config.schedule.scale,
        epochs: config.schedule.epochs,
        shards: config.shards.max(1),
        entries: Vec::new(),
    };
    let mut ledger = Vec::new();
    let mut epoch_alerts = Vec::new();
    let mut all_transactions: Vec<HttpTransaction> = Vec::new();
    let mut history: VecDeque<EpochBatch> = VecDeque::new();
    let mut next_seq = 0u64;

    for epoch in 0..config.schedule.epochs {
        let batch = schedule.epoch_batch(epoch);
        let stream = epoch_stream(&batch, &mut next_seq);
        let serving_version = engine.model_version();
        let report = engine.process(stream.iter().cloned());

        let entry = decay::epoch_metrics(&batch, &report.alerts, serving_version, &vt);
        metrics.observe_epoch(&entry);
        curve.entries.push(entry);
        epoch_alerts.push(report.alerts);
        all_transactions.extend(stream.iter().cloned());

        if let Some(retrain) = &config.retrain {
            history.push_back(batch);
            while history.len() > retrain.history_epochs.max(1) {
                history.pop_front();
            }
            // The final epoch has no successor to serve; skip the fit.
            if epoch + 1 < config.schedule.epochs {
                let window: Vec<&EpochBatch> = history.iter().collect();
                let challenger = shadow::fit_challenger(
                    &window,
                    mlearn::parallel::derive_seed(seed, CHALLENGER_SALT + epoch as u64),
                    threads,
                );
                metrics.retrains.inc();

                let champion_model = engine.model_slot().load().0;
                let (champ_recall, champ_fpr) = shadow::shadow_eval(
                    &champion_model,
                    &config.detector,
                    &stream,
                    history.back().expect("just pushed"),
                );
                let (chall_recall, chall_fpr) = shadow::shadow_eval(
                    &challenger,
                    &config.detector,
                    &stream,
                    history.back().expect("just pushed"),
                );
                let recall_margin = chall_recall - champ_recall;
                let fpr_regression = chall_fpr - champ_fpr;
                let promoted = retrain.policy.decide(recall_margin, fpr_regression);
                let champion_version = engine.model_version();
                let model_version_after = if promoted {
                    metrics.promotions.inc();
                    engine.reload_model(challenger)
                } else {
                    champion_version
                };
                ledger.push(LedgerEntry {
                    epoch,
                    champion_version,
                    champion_recall: champ_recall,
                    champion_fpr: champ_fpr,
                    challenger_recall: chall_recall,
                    challenger_fpr: chall_fpr,
                    recall_margin,
                    fpr_regression,
                    promoted,
                    model_version_after,
                });
            }
        }
    }

    metrics.finish(&curve, engine.model_version());
    let (_, downloads) = streamd::order_and_downloads(&all_transactions);
    let report = streamd::finish_report(&mut engine, downloads, threads, registry);
    DriftLabReport { curve, ledger, epoch_alerts, report }
}

/// Drift-lab telemetry: campaign progress and outcome counters.
struct LabMetrics {
    epochs: telemetry::Counter,
    episodes: telemetry::Counter,
    caught: telemetry::Counter,
    false_positives: telemetry::Counter,
    retrains: telemetry::Counter,
    promotions: telemetry::Counter,
    final_recall_permille: telemetry::Gauge,
    model_version: telemetry::Gauge,
}

impl LabMetrics {
    fn new(reg: &Registry) -> Self {
        LabMetrics {
            epochs: reg.counter("driftlab_epochs_total", "Drift epochs replayed"),
            episodes: reg.counter("driftlab_episodes_total", "Episodes replayed"),
            caught: reg.counter("driftlab_caught_total", "Infections with attributed alerts"),
            false_positives: reg
                .counter("driftlab_false_positives_total", "Benign episodes with alerts"),
            retrains: reg.counter("driftlab_retrains_total", "Challenger fits"),
            promotions: reg.counter("driftlab_promotions_total", "Challenger promotions"),
            final_recall_permille: reg
                .gauge("driftlab_final_recall_permille", "Final-epoch recall, permille"),
            model_version: reg.gauge("driftlab_model_version", "Live model generation"),
        }
    }

    fn observe_epoch(&self, m: &EpochMetrics) {
        self.epochs.inc();
        self.episodes.add((m.infections + m.benign) as u64);
        self.caught.add(m.caught as u64);
        self.false_positives.add(m.false_positives as u64);
    }

    fn finish(&self, curve: &DecayCurve, model_version: u64) {
        self.final_recall_permille.set((curve.final_recall() * 1000.0).round() as i64);
        self.model_version.set(model_version as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DriftLabConfig {
        DriftLabConfig {
            schedule: DriftScheduleConfig {
                scale: 0.02,
                epochs: 3,
                ..DriftScheduleConfig::default()
            },
            train_scale: 0.02,
            ..DriftLabConfig::default()
        }
    }

    #[test]
    fn lab_runs_and_attributes_every_alert_to_a_model_version() {
        let reg = Registry::new();
        let out = run_drift_lab(&tiny_config(), Some(&reg));
        assert_eq!(out.curve.entries.len(), 3);
        assert!(out.ledger.is_empty(), "no retraining configured");
        // Without retraining the engine never reloads: every alert
        // carries the day-0 model generation.
        for alerts in &out.epoch_alerts {
            for a in alerts {
                assert_eq!(a.model_version, 1);
            }
        }
        assert_eq!(reg.snapshot().counter("driftlab_epochs_total"), 3);
        assert_eq!(reg.snapshot().counter("driftlab_retrains_total"), 0);
        assert!(out.curve.initial_recall() > 0.5, "day-0 model should catch clean epoch 0");
    }

    #[test]
    fn retrain_loop_writes_one_ledger_row_per_interior_epoch() {
        let mut cfg = tiny_config();
        cfg.retrain = Some(RetrainConfig::default());
        let reg = Registry::new();
        let out = run_drift_lab(&cfg, Some(&reg));
        // Epochs 0 and 1 get decisions; the final epoch has no successor.
        assert_eq!(out.ledger.len(), 2);
        for (i, entry) in out.ledger.iter().enumerate() {
            assert_eq!(entry.epoch, i);
            assert_eq!(entry.promoted, entry.model_version_after > entry.champion_version);
            assert!((entry.recall_margin
                - (entry.challenger_recall - entry.champion_recall))
                .abs()
                < 1e-12);
        }
        let promotions = out.ledger.iter().filter(|e| e.promoted).count() as u64;
        assert_eq!(reg.snapshot().counter("driftlab_promotions_total"), promotions);
        assert_eq!(reg.snapshot().counter("driftlab_retrains_total"), 2);
        // The curve records the version that *served* each epoch, so a
        // promotion after epoch k shows up in epoch k+1's row.
        for pair in out.curve.entries.windows(2) {
            assert!(pair[1].model_version >= pair[0].model_version);
        }
    }

    #[test]
    fn identical_configs_reproduce_identical_curves() {
        let a = run_drift_lab(&tiny_config(), None);
        let b = run_drift_lab(&tiny_config(), None);
        assert_eq!(
            serde_json::to_string(&a.curve).unwrap(),
            serde_json::to_string(&b.curve).unwrap()
        );
        assert_eq!(a.report.alerts, b.report.alerts);
    }
}
