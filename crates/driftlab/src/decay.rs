//! The decay harness: per-epoch detector metrics and the
//! signature-scanner comparison.
//!
//! Each epoch's merged alert stream is attributed back to the episodes
//! that produced it (by victim address and time window — the only
//! join keys an on-the-wire observer has), yielding per-epoch recall,
//! false-positive rate, and alert latency. Every infection's payloads
//! are also scored through [`vtsim`] with `first_seen_ts` pinned to the
//! episode itself, so the curve quantifies the paper's central claim —
//! behavior-based detection does not wait out the 9.25-day signature
//! lag — *per epoch*, as the adversary drifts.

use dynaminer::detector::Alert;
use serde::{Deserialize, Serialize};
use synthtraffic::drift::DriftKnobs;
use synthtraffic::episode::Episode;
use vtsim::{ScanRequest, VirusTotalSim};

use crate::schedule::EpochBatch;

/// Grace period appended to an episode's own duration when matching
/// alerts: verdict sweeps and idle-timeout closures can fire just after
/// the last transaction.
pub const ATTRIBUTION_GRACE_SECS: f64 = 60.0;

/// Detector and scanner performance over one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index, 0-based.
    pub epoch: usize,
    /// Epoch window start (epoch seconds).
    pub start_ts: f64,
    /// Infection episodes in the epoch.
    pub infections: usize,
    /// Benign episodes in the epoch.
    pub benign: usize,
    /// Infection episodes with at least one attributed alert.
    pub caught: usize,
    /// Benign episodes with at least one attributed alert.
    pub false_positives: usize,
    /// `caught / infections`.
    pub recall: f64,
    /// `false_positives / benign`.
    pub fpr: f64,
    /// Mean seconds from episode start to its first attributed alert
    /// (`None` when nothing was caught).
    pub mean_alert_latency: Option<f64>,
    /// Fraction of infections whose payloads VirusTotal flags when
    /// queried *live*, at each episode's own end — the on-the-wire
    /// comparison point.
    pub vt_recall_live: f64,
    /// The same fraction queried at the epoch's end, after signatures
    /// have had up to the whole epoch to catch up.
    pub vt_recall_epoch_end: f64,
    /// Model generation that served this epoch (the version the engine
    /// entered the epoch with).
    pub model_version: u64,
    /// Mean drift knobs across families at this epoch.
    pub mean_knobs: DriftKnobs,
}

/// A full campaign's decay curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayCurve {
    /// Schedule seed.
    pub seed: u64,
    /// Schedule scale.
    pub scale: f64,
    /// Epoch count.
    pub epochs: usize,
    /// Engine shard count the campaign ran at.
    pub shards: usize,
    /// One entry per epoch, in order.
    pub entries: Vec<EpochMetrics>,
}

impl DecayCurve {
    /// Recall of the final epoch (0.0 for an empty curve).
    pub fn final_recall(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.recall)
    }

    /// Recall of the first epoch (0.0 for an empty curve).
    pub fn initial_recall(&self) -> f64 {
        self.entries.first().map_or(0.0, |e| e.recall)
    }
}

/// Whether `alert` belongs to `episode`: same victim address, raised
/// inside the episode's own time span plus a grace period.
pub fn alert_matches(alert: &Alert, episode: &Episode) -> bool {
    alert.client == episode.victim.addr
        && alert.ts >= episode.start_ts
        && alert.ts <= episode.start_ts + episode.duration() + ATTRIBUTION_GRACE_SECS
}

/// Attributes an epoch's alerts to its episodes. Returns, per episode
/// (in batch order), the timestamp of the first matching alert.
pub fn attribute_alerts(batch: &EpochBatch, alerts: &[Alert]) -> Vec<Option<f64>> {
    batch
        .episodes
        .iter()
        .map(|ep| {
            alerts
                .iter()
                .filter(|a| alert_matches(a, ep))
                .map(|a| a.ts)
                .fold(None, |acc: Option<f64>, ts| {
                    Some(acc.map_or(ts, |prev| prev.min(ts)))
                })
        })
        .collect()
}

/// Detector-side confusion over one epoch: `(caught, false_positives,
/// mean alert latency over caught infections)`.
pub fn confusion(batch: &EpochBatch, alerts: &[Alert]) -> (usize, usize, Option<f64>) {
    let first_alert = attribute_alerts(batch, alerts);
    let mut caught = 0usize;
    let mut false_positives = 0usize;
    let mut latency_sum = 0.0;
    for (ep, first) in batch.episodes.iter().zip(&first_alert) {
        match (ep.is_infection(), first) {
            (true, Some(ts)) => {
                caught += 1;
                latency_sum += ts - ep.start_ts;
            }
            (false, Some(_)) => false_positives += 1,
            _ => {}
        }
    }
    let latency = (caught > 0).then(|| latency_sum / caught as f64);
    (caught, false_positives, latency)
}

/// Whether VirusTotal flags `episode` at `query_ts`: any of its
/// genuinely malicious payloads scores ≥ 3 engine positives. Payload
/// `first_seen_ts` is the episode's own start — each drifted sample is
/// new to the signature feeds, which is exactly the lag the paper
/// measures.
pub fn vt_flags_episode(vt: &VirusTotalSim, episode: &Episode, query_ts: f64) -> bool {
    episode.malicious_digests.iter().any(|&digest| {
        vt.scan(
            &ScanRequest {
                digest,
                truly_malicious: true,
                first_seen_ts: episode.start_ts,
                unofficial_benign_source: false,
            },
            query_ts,
        )
        .is_flagged()
    })
}

/// Computes the full metrics row for one epoch.
pub fn epoch_metrics(
    batch: &EpochBatch,
    alerts: &[Alert],
    model_version: u64,
    vt: &VirusTotalSim,
) -> EpochMetrics {
    let infections = batch.infections().count();
    let benign = batch.benign().count();
    let (caught, false_positives, mean_alert_latency) = confusion(batch, alerts);
    let mut vt_live = 0usize;
    let mut vt_end = 0usize;
    for ep in batch.infections() {
        if vt_flags_episode(vt, ep, ep.start_ts + ep.duration()) {
            vt_live += 1;
        }
        if vt_flags_episode(vt, ep, batch.end_ts) {
            vt_end += 1;
        }
    }
    let frac = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    EpochMetrics {
        epoch: batch.epoch,
        start_ts: batch.start_ts,
        infections,
        benign,
        caught,
        false_positives,
        recall: frac(caught, infections),
        fpr: frac(false_positives, benign),
        mean_alert_latency,
        vt_recall_live: frac(vt_live, infections),
        vt_recall_epoch_end: frac(vt_end, infections),
        model_version,
        mean_knobs: batch.mean_knobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{DriftSchedule, DriftScheduleConfig};
    use nettrace::payload::PayloadClass;

    fn batch() -> EpochBatch {
        DriftSchedule::new(DriftScheduleConfig {
            scale: 0.02,
            epochs: 3,
            ..DriftScheduleConfig::default()
        })
        .epoch_batch(0)
    }

    fn alert_for(ep: &Episode, offset: f64) -> Alert {
        Alert {
            client: ep.victim.addr,
            conversation_id: 1,
            ts: ep.start_ts + offset,
            score: 0.9,
            trigger_host: "x".into(),
            trigger_payload: PayloadClass::Exe,
            conversation_size: 5,
            model_version: 1,
        }
    }

    #[test]
    fn attribution_joins_on_victim_and_window() {
        let b = batch();
        let infection = b.infections().next().unwrap().clone();
        let inside = alert_for(&infection, 1.0);
        let too_late = alert_for(
            &infection,
            infection.duration() + ATTRIBUTION_GRACE_SECS + 1.0,
        );
        assert!(alert_matches(&inside, &infection));
        assert!(!alert_matches(&too_late, &infection));

        let (caught, fp, latency) = confusion(&b, &[inside.clone(), too_late]);
        assert!(caught >= 1);
        assert_eq!(fp, 0);
        assert!(latency.unwrap() <= 1.0 + f64::EPSILON);
        // Earliest matching alert wins the latency join.
        let later = alert_for(&infection, 5.0);
        let (_, _, lat2) = confusion(&b, &[later, inside]);
        assert!(lat2.unwrap() <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn benign_alert_counts_as_false_positive() {
        let b = batch();
        let benign = b.benign().next().unwrap().clone();
        let (caught, fp, _) = confusion(&b, &[alert_for(&benign, 0.5)]);
        assert_eq!(caught, 0);
        assert!(fp >= 1);
    }

    #[test]
    fn vt_lag_shows_between_live_and_epoch_end() {
        // Queried live (seconds after first appearance) the signature
        // feeds should trail queries made two weeks later.
        let b = batch();
        let vt = VirusTotalSim::with_default_engines(42);
        let m = epoch_metrics(&b, &[], 1, &vt);
        assert!(m.vt_recall_epoch_end >= m.vt_recall_live);
        assert!(m.vt_recall_live < 1.0, "live VT should miss fresh payloads");
        assert_eq!(m.caught, 0);
        assert_eq!(m.recall, 0.0);
        assert!(m.mean_alert_latency.is_none());
    }
}
