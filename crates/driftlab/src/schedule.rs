//! The drift schedule: deterministic, seeded parameter walks over
//! simulated time, emitted as dated episode batches.
//!
//! Each exploit-kit family walks its own path through knob space: a
//! per-family drift *rate* (a pure function of the schedule seed and the
//! family) scales a global ramp that rises linearly from zero at epoch 0
//! to the configured ceiling at the final epoch. Fast-moving families
//! (think Angler's weekly re-tooling) reach deep cloaking while slower
//! ones lag — the same asymmetry the ThreatGlass substitution in PAPER.md
//! models for family evolution.
//!
//! Every batch is a pure function of `(config, epoch)`: calling
//! [`DriftSchedule::epoch_batch`] twice — or from two processes —
//! produces byte-identical episodes. That purity is what the decay
//! goldens and the schedule-determinism proptest pin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use synthtraffic::benign::{generate_benign, BenignScenario};
use synthtraffic::corpus::INFECTION_WINDOW_END;
use synthtraffic::drift::{apply_drift, DriftKnobs};
use synthtraffic::episode::{generate_infection, Episode};
use synthtraffic::EkFamily;

/// Domain separator so drift RNG streams never collide with the
/// ground-truth corpus streams derived from the same user seed.
const DRIFT_SALT: u64 = 0xd21f_7a5e_0c4b_91e3;

/// Schedule parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftScheduleConfig {
    /// Master seed; every epoch derives its own RNG from it.
    pub seed: u64,
    /// Corpus scale per epoch (1.0 ≈ one Table I ground truth per epoch).
    pub scale: f64,
    /// Number of epochs in the campaign.
    pub epochs: usize,
    /// Simulated seconds per epoch.
    pub epoch_secs: f64,
    /// Campaign start (epoch seconds). Defaults to the end of the
    /// paper's infection window — drift begins where the ground truth
    /// stops.
    pub start_ts: f64,
    /// Knob ceiling reached at the final epoch by a rate-1.0 family.
    pub max_knobs: DriftKnobs,
}

impl Default for DriftScheduleConfig {
    fn default() -> Self {
        DriftScheduleConfig {
            seed: 42,
            scale: 0.05,
            epochs: 6,
            epoch_secs: 14.0 * 86_400.0,
            start_ts: INFECTION_WINDOW_END,
            // Calibrated so most of the decay is model-signal erosion
            // (timing, URI shapes, call-back cloaks) rather than clue-gate
            // starvation: a retrained forest can win back what a dead gate
            // cannot.
            max_knobs: DriftKnobs {
                redirect_shorten: 0.35,
                benign_mimicry: 0.85,
                payload_shift: 0.35,
                evasion_prob: 0.55,
            },
        }
    }
}

/// One dated batch of drifted episodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochBatch {
    /// Epoch index, 0-based.
    pub epoch: usize,
    /// Epoch window start (epoch seconds).
    pub start_ts: f64,
    /// Epoch window end (epoch seconds).
    pub end_ts: f64,
    /// Mean knobs across families at this epoch (for reporting).
    pub mean_knobs: DriftKnobs,
    /// Episodes: drifted infections (family-major, generation order)
    /// followed by benign sessions, each starting inside the window.
    pub episodes: Vec<Episode>,
}

impl EpochBatch {
    /// Infection episodes in the batch.
    pub fn infections(&self) -> impl Iterator<Item = &Episode> {
        self.episodes.iter().filter(|e| e.is_infection())
    }

    /// Benign episodes in the batch.
    pub fn benign(&self) -> impl Iterator<Item = &Episode> {
        self.episodes.iter().filter(|e| !e.is_infection())
    }
}

/// Deterministic drift-campaign generator.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    config: DriftScheduleConfig,
}

impl DriftSchedule {
    /// Wraps a configuration.
    pub fn new(config: DriftScheduleConfig) -> Self {
        DriftSchedule { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &DriftScheduleConfig {
        &self.config
    }

    /// Per-family drift rate in `[0.55, 1.0]`: a pure function of
    /// `(seed, family)`, so the same campaign always assigns the same
    /// families the same walking speed.
    pub fn family_rate(&self, family: EkFamily) -> f64 {
        let idx = EkFamily::ALL.iter().position(|f| *f == family).unwrap_or(0) as u64;
        let h = mlearn::parallel::derive_seed(self.config.seed ^ DRIFT_SALT, idx);
        0.55 + 0.45 * ((h >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// The knobs `family` runs at in `epoch`: the global ramp
    /// (`epoch / (epochs - 1)`) scaled by the family rate and the
    /// configured ceiling. Epoch 0 is always undrifted.
    pub fn knobs_for(&self, family: EkFamily, epoch: usize) -> DriftKnobs {
        let span = self.config.epochs.saturating_sub(1).max(1) as f64;
        let ramp = (epoch as f64 / span).clamp(0.0, 1.0);
        self.config.max_knobs.scaled(ramp * self.family_rate(family))
    }

    /// Simulated time window of `epoch`.
    pub fn epoch_window(&self, epoch: usize) -> (f64, f64) {
        let start = self.config.start_ts + epoch as f64 * self.config.epoch_secs;
        (start, start + self.config.epoch_secs)
    }

    /// Generates the dated episode batch for `epoch` — a pure function
    /// of `(config, epoch)`, byte-identical across calls and processes.
    pub fn epoch_batch(&self, epoch: usize) -> EpochBatch {
        let (start_ts, end_ts) = self.epoch_window(epoch);
        let mut rng = StdRng::seed_from_u64(mlearn::parallel::derive_seed(
            self.config.seed ^ DRIFT_SALT,
            epoch as u64,
        ));
        let mut episodes = Vec::new();
        let mut knob_sum = [0.0f64; 4];
        for family in EkFamily::ALL {
            let knobs = self.knobs_for(family, epoch);
            knob_sum[0] += knobs.redirect_shorten;
            knob_sum[1] += knobs.benign_mimicry;
            knob_sum[2] += knobs.payload_shift;
            knob_sum[3] += knobs.evasion_prob;
            let count = scaled(family.profile().ground_truth_pcaps, self.config.scale);
            for _ in 0..count {
                let ts = rng.gen_range(start_ts..end_ts);
                let base = generate_infection(&mut rng, family, ts);
                episodes.push(apply_drift(&mut rng, &knobs, base));
            }
        }
        let benign_count = scaled(980, self.config.scale);
        for _ in 0..benign_count {
            let ts = rng.gen_range(start_ts..end_ts);
            let scenario = BenignScenario::sample(&mut rng);
            episodes.push(generate_benign(&mut rng, scenario, ts));
        }
        let n = EkFamily::ALL.len() as f64;
        EpochBatch {
            epoch,
            start_ts,
            end_ts,
            mean_knobs: DriftKnobs {
                redirect_shorten: knob_sum[0] / n,
                benign_mimicry: knob_sum[1] / n,
                payload_shift: knob_sum[2] / n,
                evasion_prob: knob_sum[3] / n,
            },
            episodes,
        }
    }
}

fn scaled(count: usize, scale: f64) -> usize {
    ((count as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> DriftSchedule {
        DriftSchedule::new(DriftScheduleConfig {
            scale: 0.02,
            epochs: 4,
            ..DriftScheduleConfig::default()
        })
    }

    #[test]
    fn batches_are_dated_and_windowed() {
        let s = schedule();
        for epoch in 0..4 {
            let batch = s.epoch_batch(epoch);
            assert_eq!(batch.epoch, epoch);
            for ep in &batch.episodes {
                assert!(
                    ep.start_ts >= batch.start_ts && ep.start_ts < batch.end_ts,
                    "episode outside epoch {epoch} window"
                );
            }
            assert!(batch.infections().count() > 0);
            assert!(batch.benign().count() > 0);
        }
        // Consecutive windows tile the campaign.
        let (s0, e0) = s.epoch_window(0);
        let (s1, _) = s.epoch_window(1);
        assert_eq!(e0, s1);
        assert!(s0 < e0);
    }

    #[test]
    fn epoch_zero_is_undrifted_and_ramps_monotonically() {
        let s = schedule();
        for family in EkFamily::ALL {
            assert!(s.knobs_for(family, 0).is_none(), "epoch 0 must be clean");
            let mut prev = 0.0;
            for epoch in 0..4 {
                let k = s.knobs_for(family, epoch);
                assert!(k.benign_mimicry >= prev, "{family:?} not monotone");
                prev = k.benign_mimicry;
            }
            let rate = s.family_rate(family);
            assert!((0.55..=1.0).contains(&rate), "{family:?} rate {rate}");
        }
    }

    #[test]
    fn batches_are_pure_functions_of_config_and_epoch() {
        let a = schedule().epoch_batch(2);
        let b = schedule().epoch_batch(2);
        assert_eq!(a.episodes.len(), b.episodes.len());
        for (x, y) in a.episodes.iter().zip(&b.episodes) {
            assert_eq!(x.transactions.len(), y.transactions.len());
            assert_eq!(x.start_ts.to_bits(), y.start_ts.to_bits());
            for (tx, ty) in x.transactions.iter().zip(&y.transactions) {
                assert_eq!(tx.host, ty.host);
                assert_eq!(tx.uri, ty.uri);
                assert_eq!(tx.ts.to_bits(), ty.ts.to_bits());
                assert_eq!(tx.payload_digest, ty.payload_digest);
            }
        }
    }

    #[test]
    fn later_epochs_carry_visibly_drifted_episodes() {
        let s = schedule();
        let early = s.epoch_batch(0);
        let late = s.epoch_batch(3);
        let redirects = |b: &EpochBatch| {
            b.infections().map(|e| e.redirect_count()).sum::<usize>() as f64
                / b.infections().count().max(1) as f64
        };
        let duration = |b: &EpochBatch| {
            b.infections().map(|e| e.duration()).sum::<f64>()
                / b.infections().count().max(1) as f64
        };
        assert!(
            redirects(&late) < redirects(&early),
            "late epochs should shorten chains: {} vs {}",
            redirects(&late),
            redirects(&early)
        );
        assert!(
            duration(&late) > duration(&early),
            "mimicry pacing should stretch late episodes"
        );
    }
}
