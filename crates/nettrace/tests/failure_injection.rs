//! Failure-injection tests: corrupted captures, malformed HTTP, and
//! adversarial framing must degrade gracefully (error or skip), never
//! panic or mis-pair.

use std::net::Ipv4Addr;

use nettrace::ether::{self, MacAddr, ETHERTYPE_IPV4};
use nettrace::ipv4::{self, PROTO_TCP};
use nettrace::pcap::{Packet, PcapReader, PcapWriter};
use nettrace::tcp::{self, TcpFlags};
use nettrace::{Error, TransactionExtractor};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

/// Client-to-server data segment (server port 80).
fn http_packet(ts: f64, src_port: u16, dst_port: u16, seq: u32, payload: &[u8]) -> Packet {
    let (src, dst) = if dst_port == 80 { (CLIENT, SERVER) } else { (SERVER, CLIENT) };
    let seg = tcp::build(src_port, dst_port, seq, 0, TcpFlags::data(), payload);
    let ip = ipv4::build(src, dst, PROTO_TCP, 1, &seg);
    Packet::new(ts, ether::build(MacAddr([1; 6]), MacAddr([2; 6]), ETHERTYPE_IPV4, &ip))
}

#[test]
fn truncated_pcap_header_is_an_error() {
    for len in 0..24 {
        let buf = vec![0xa1u8; len];
        assert!(PcapReader::new(buf.as_slice()).is_err(), "len {len}");
    }
}

#[test]
fn corrupted_record_length_detected() {
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf).unwrap();
    w.write_packet(&Packet::new(1.0, vec![1, 2, 3])).unwrap();
    w.finish().unwrap();
    // Corrupt the caplen field of the first record (offset 24 + 8).
    buf[32] = 0xff;
    buf[33] = 0xff;
    buf[34] = 0xff;
    buf[35] = 0x7f;
    let mut r = PcapReader::new(buf.as_slice()).unwrap();
    assert!(matches!(r.next_packet(), Err(Error::BadCaptureLength(_))));
}

#[test]
fn garbage_packets_are_skipped_not_fatal() {
    let packets = vec![
        Packet::new(1.0, vec![0u8; 3]),                    // too short for ethernet
        Packet::new(1.1, vec![0xffu8; 64]),                // not ipv4
        http_packet(1.2, 40000, 80, 1, b"GET / HTTP/1.1\r\nHost: ok.example\r\n\r\n"),
    ];
    let txs = TransactionExtractor::extract(&packets).unwrap();
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].host, "ok.example");
}

#[test]
fn malformed_request_stream_is_reported() {
    // A stream that *starts* like HTTP but carries a malformed header
    // line. (Streams that never look like HTTP are skipped silently;
    // version-less HTTP/0.9-style request lines are tolerated.)
    let packets = vec![http_packet(
        1.0,
        40001,
        80,
        1,
        b"GET /x HTTP/1.1\r\nbroken header without colon\r\n\r\n",
    )];
    assert!(TransactionExtractor::extract(&packets).is_err());
    let lenient =
        vec![http_packet(1.0, 40005, 80, 1, b"GET /no-version\r\nHost: x\r\n\r\n")];
    let txs = TransactionExtractor::extract(&lenient).unwrap();
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].uri, "/no-version");
}

#[test]
fn binary_stream_on_port_80_is_ignored() {
    let packets = vec![http_packet(1.0, 40002, 80, 1, &[0x16, 0x03, 0x01, 0x00, 0x50])];
    let txs = TransactionExtractor::extract(&packets).unwrap();
    assert!(txs.is_empty());
}

#[test]
fn response_without_request_is_ignored() {
    // Server-to-client data with no request direction captured.
    let packets =
        vec![http_packet(1.0, 80, 40003, 1, b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")];
    let txs = TransactionExtractor::extract(&packets).unwrap();
    assert!(txs.is_empty());
}

#[test]
fn oversized_declared_body_is_clamped_to_stream() {
    // Content-Length far beyond what actually arrived: the extractor must
    // take what exists instead of blocking.
    let req = http_packet(1.0, 40004, 80, 1, b"GET /big HTTP/1.1\r\nHost: h\r\n\r\n");
    let resp = http_packet(
        1.1,
        80,
        40004,
        1,
        b"HTTP/1.1 200 OK\r\nContent-Length: 999999\r\n\r\nonly-this",
    );
    let txs = TransactionExtractor::extract(&[req, resp]).unwrap();
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].payload_size, 9);
}

#[test]
fn interleaved_connections_do_not_cross_pair() {
    // Two clients talk to the same server concurrently; responses must
    // pair within their own connection.
    let a_req = http_packet(1.0, 50001, 80, 1, b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n");
    let b_req = http_packet(1.05, 50002, 80, 1, b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n");
    let b_resp = http_packet(
        1.10,
        80,
        50002,
        1,
        b"HTTP/1.1 404 NF\r\nContent-Length: 1\r\n\r\nB",
    );
    let a_resp = http_packet(
        1.20,
        80,
        50001,
        1,
        b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA",
    );
    let txs = TransactionExtractor::extract(&[a_req, b_req, b_resp, a_resp]).unwrap();
    assert_eq!(txs.len(), 2);
    let a = txs.iter().find(|t| t.uri == "/a").unwrap();
    let b = txs.iter().find(|t| t.uri == "/b").unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 404);
}

#[test]
fn head_responses_do_not_consume_bodyless_frames() {
    // HEAD answers carry Content-Length but no body; the next response on
    // the connection must still pair correctly.
    let reqs = http_packet(
        1.0,
        50003,
        80,
        1,
        b"HEAD /h HTTP/1.1\r\nHost: x\r\n\r\nGET /g HTTP/1.1\r\nHost: x\r\n\r\n",
    );
    let resps = http_packet(
        1.1,
        80,
        50003,
        1,
        b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nGG",
    );
    let txs = TransactionExtractor::extract(&[reqs, resps]).unwrap();
    assert_eq!(txs.len(), 2);
    assert_eq!(txs[0].uri, "/h");
    assert_eq!(txs[0].payload_size, 0, "HEAD has no body");
    assert_eq!(txs[1].uri, "/g");
    assert_eq!(txs[1].payload_size, 2);
}

#[test]
fn rst_terminated_stream_still_yields_transactions() {
    let req = http_packet(1.0, 50004, 80, 1, b"GET /r HTTP/1.1\r\nHost: x\r\n\r\n");
    let rst_seg = tcp::build(50004, 80, 30, 0, TcpFlags { rst: true, ..TcpFlags::default() }, &[]);
    let ip = ipv4::build(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(198, 51, 100, 1), PROTO_TCP, 2, &rst_seg);
    let rst = Packet::new(1.2, ether::build(MacAddr([1; 6]), MacAddr([2; 6]), ETHERTYPE_IPV4, &ip));
    let txs = TransactionExtractor::extract(&[req, rst]).unwrap();
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].status, 0, "no response observed");
}
