//! End-to-end test: build raw packets for an HTTP conversation, serialize
//! them to pcap bytes, read the pcap back, and extract paired transactions.

use std::net::Ipv4Addr;

use nettrace::ether::{self, MacAddr, ETHERTYPE_IPV4};
use nettrace::http::Method;
use nettrace::ipv4::{self, PROTO_TCP};
use nettrace::payload::PayloadClass;
use nettrace::pcap::{Packet, PcapReader, PcapWriter};
use nettrace::tcp::{self, TcpFlags};
use nettrace::TransactionExtractor;

struct PacketFactory {
    ident: u16,
}

impl PacketFactory {
    fn new() -> Self {
        PacketFactory { ident: 1 }
    }

    #[allow(clippy::too_many_arguments)]
    fn tcp_packet(
        &mut self,
        ts: f64,
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Packet {
        let seg = tcp::build(src.1, dst.1, seq, 0, flags, payload);
        let ip = ipv4::build(src.0, dst.0, PROTO_TCP, self.ident, &seg);
        self.ident = self.ident.wrapping_add(1);
        let eth = ether::build(MacAddr([2; 6]), MacAddr([1; 6]), ETHERTYPE_IPV4, &ip);
        Packet::new(ts, eth)
    }
}

#[test]
fn full_pipeline_pcap_roundtrip() {
    let client = (Ipv4Addr::new(10, 0, 0, 5), 49321u16);
    let server = (Ipv4Addr::new(93, 184, 216, 34), 80u16);
    let mut fac = PacketFactory::new();

    let request = b"GET /exploit/payload.exe HTTP/1.1\r\nHost: evil.example\r\nReferer: http://bing.com/search?q=stream\r\n\r\n";
    let body = b"MZ\x90\x00fakewindowsbinary";
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-msdownload\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );

    let mut packets = Vec::new();
    // Handshake (SYN both ways), request, response split across two
    // segments arriving out of order, FIN.
    packets.push(fac.tcp_packet(1.00, client, server, 1000, TcpFlags::syn(), b""));
    packets.push(fac.tcp_packet(1.01, server, client, 5000, TcpFlags::syn(), b""));
    packets.push(fac.tcp_packet(1.02, client, server, 1001, TcpFlags::data(), request));

    let mut resp_bytes = response.into_bytes();
    resp_bytes.extend_from_slice(body);
    let (first, second) = resp_bytes.split_at(40);
    // Deliver the second half first to exercise reordering.
    packets.push(fac.tcp_packet(1.20, server, client, 5001 + 40, TcpFlags::data(), second));
    packets.push(fac.tcp_packet(1.25, server, client, 5001, TcpFlags::data(), first));
    packets.push(fac.tcp_packet(1.30, client, server, 1001 + request.len() as u32, TcpFlags::fin(), b""));

    // Serialize to pcap and read back.
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf).unwrap();
    for p in &packets {
        writer.write_packet(p).unwrap();
    }
    writer.finish().unwrap();
    let replayed = PcapReader::new(buf.as_slice()).unwrap().collect_packets().unwrap();
    assert_eq!(replayed.len(), packets.len());

    let txs = TransactionExtractor::extract(&replayed).unwrap();
    assert_eq!(txs.len(), 1);
    let t = &txs[0];
    assert_eq!(t.host, "evil.example");
    assert_eq!(t.method, Method::Get);
    assert_eq!(t.uri, "/exploit/payload.exe");
    assert_eq!(t.status, 200);
    assert_eq!(t.payload_class, PayloadClass::Exe);
    assert_eq!(t.payload_size, body.len());
    assert_eq!(t.referer(), Some("http://bing.com/search?q=stream"));
    assert_eq!(t.client.port, client.1);
    assert_eq!(t.server.addr, server.0);
    assert!((t.ts - 1.02).abs() < 1e-6);
}

#[test]
fn non_http_traffic_is_ignored() {
    let a = (Ipv4Addr::new(10, 0, 0, 5), 40000u16);
    let b = (Ipv4Addr::new(10, 0, 0, 6), 443u16);
    let mut fac = PacketFactory::new();
    let packets = vec![
        fac.tcp_packet(1.0, a, b, 1, TcpFlags::data(), b"\x16\x03\x01\x02\x00binary-tls"),
        fac.tcp_packet(1.1, b, a, 1, TcpFlags::data(), b"\x16\x03\x03junk"),
    ];
    let txs = TransactionExtractor::extract(&packets).unwrap();
    assert!(txs.is_empty());
}

#[test]
fn multiple_connections_sorted_by_time() {
    let client = (Ipv4Addr::new(10, 0, 0, 5), 49321u16);
    let s1 = (Ipv4Addr::new(198, 51, 100, 1), 80u16);
    let s2 = (Ipv4Addr::new(198, 51, 100, 2), 80u16);
    let mut fac = PacketFactory::new();
    let req1 = b"GET /late HTTP/1.1\r\nHost: one\r\n\r\n";
    let req2 = b"GET /early HTTP/1.1\r\nHost: two\r\n\r\n";
    let packets = vec![
        fac.tcp_packet(5.0, client, s1, 1, TcpFlags::data(), req1),
        fac.tcp_packet(2.0, (client.0, 49322), s2, 1, TcpFlags::data(), req2),
    ];
    let txs = TransactionExtractor::extract(&packets).unwrap();
    assert_eq!(txs.len(), 2);
    assert_eq!(txs[0].uri, "/early");
    assert_eq!(txs[1].uri, "/late");
}
