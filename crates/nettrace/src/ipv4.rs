//! IPv4 packet parsing and construction with header checksums.

use std::net::Ipv4Addr;

use crate::{Error, Result};

/// Minimum IPv4 header length (no options) in bytes.
pub const MIN_HEADER_LEN: usize = 20;
/// Protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

/// A parsed IPv4 packet borrowing its payload from the input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<'a> {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol number (e.g. [`PROTO_TCP`]).
    pub protocol: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
    /// Transport payload, bounded by the header's total-length field.
    pub payload: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Parses an IPv4 packet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] when the buffer is shorter than the
    /// declared header or total length, and [`Error::InvalidField`] when the
    /// version is not 4 or the IHL is below 5.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated { layer: "ipv4", needed: MIN_HEADER_LEN, got: data.len() });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Error::InvalidField { layer: "ipv4", field: "version" });
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(Error::InvalidField { layer: "ipv4", field: "ihl" });
        }
        if data.len() < ihl {
            return Err(Error::Truncated { layer: "ipv4", needed: ihl, got: data.len() });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || data.len() < total_len {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: total_len.max(ihl),
                got: data.len(),
            });
        }
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let ttl = data[8];
        let protocol = data[9];
        let src = Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        Ok(Ipv4Packet { src, dst, protocol, ttl, ident, payload: &data[ihl..total_len] })
    }
}

/// Builds an IPv4 packet (20-byte header, valid checksum) around `payload`.
///
/// # Panics
///
/// Panics if `payload` exceeds the IPv4 total-length field (65515 bytes).
pub fn build(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ident: u16, payload: &[u8]) -> Vec<u8> {
    let total_len = MIN_HEADER_LEN + payload.len();
    assert!(total_len <= u16::MAX as usize, "ipv4 payload too large: {}", payload.len());
    let mut out = vec![0u8; total_len];
    out[0] = 0x45; // version 4, IHL 5
    out[2..4].copy_from_slice(&(total_len as u16).to_be_bytes());
    out[4..6].copy_from_slice(&ident.to_be_bytes());
    out[8] = 64; // ttl
    out[9] = protocol;
    out[12..16].copy_from_slice(&src.octets());
    out[16..20].copy_from_slice(&dst.octets());
    let csum = checksum(&out[..MIN_HEADER_LEN]);
    out[10..12].copy_from_slice(&csum.to_be_bytes());
    out[MIN_HEADER_LEN..].copy_from_slice(payload);
    out
}

/// Computes the Internet checksum (RFC 1071) over `data`.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 168, 1, 7);
        let pkt = build(src, dst, PROTO_TCP, 42, b"payload");
        let parsed = Ipv4Packet::parse(&pkt).unwrap();
        assert_eq!(parsed.src, src);
        assert_eq!(parsed.dst, dst);
        assert_eq!(parsed.protocol, PROTO_TCP);
        assert_eq!(parsed.ident, 42);
        assert_eq!(parsed.payload, b"payload");
    }

    #[test]
    fn built_header_checksum_verifies() {
        let pkt = build(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 6, 0, b"x");
        // Re-checksumming a valid header (checksum field included) yields 0.
        assert_eq!(checksum(&pkt[..MIN_HEADER_LEN]), 0);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut pkt = build(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 6, 0, b"");
        pkt[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::parse(&pkt),
            Err(Error::InvalidField { field: "version", .. })
        ));
    }

    #[test]
    fn rejects_short_ihl() {
        let mut pkt = build(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 6, 0, b"");
        pkt[0] = 0x44; // IHL 4 words = 16 bytes < 20
        assert!(matches!(Ipv4Packet::parse(&pkt), Err(Error::InvalidField { field: "ihl", .. })));
    }

    #[test]
    fn payload_bounded_by_total_length() {
        // Append trailing Ethernet padding: the parser must not include it.
        let mut pkt = build(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 6, 0, b"abc");
        pkt.extend_from_slice(&[0u8; 10]);
        let parsed = Ipv4Packet::parse(&pkt).unwrap();
        assert_eq!(parsed.payload, b"abc");
    }

    #[test]
    fn rejects_truncated_body() {
        let pkt = build(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 6, 0, b"abcdef");
        assert!(Ipv4Packet::parse(&pkt[..pkt.len() - 2]).is_err());
    }

    #[test]
    fn checksum_odd_length() {
        // RFC 1071 example-style check: odd-length data is padded with zero.
        let even = checksum(&[0x01, 0x02, 0x03, 0x00]);
        let odd = checksum(&[0x01, 0x02, 0x03]);
        assert_eq!(even, odd);
    }
}
