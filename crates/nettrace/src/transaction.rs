//! Pairing of HTTP requests and responses into transactions.
//!
//! An [`HttpTransaction`] is the unit every downstream DynaMiner component
//! consumes: one request/response exchange between a client and a server,
//! carrying timestamps, headers, and a classified payload summary.
//!
//! [`TransactionExtractor`] reconstructs transactions from raw captured
//! packets: Ethernet → IPv4 → TCP → stream reassembly → HTTP parsing →
//! FIFO request/response pairing per connection.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::arena::{subslice_range, PacketSpan};
use crate::ether::{EtherFrame, ETHERTYPE_IPV4};
use crate::http::{
    parse_request_head, parse_response_head, request_body_framing, response_body_framing,
    BodyFraming, HeaderMap, Method,
};
use crate::ingest::IngestReport;
use crate::ipv4::{Ipv4Packet, PROTO_TCP};
use crate::payload::{classify, PayloadClass};
use crate::pcap::Packet;
use crate::reassembly::{
    Endpoint, FlowKey, SpanReassembler, Stream, StreamBuf, StreamReassembler, StreamView,
};
use crate::tcp::TcpSegment;
use crate::{Error, Result};

/// Number of leading body bytes retained for inspection (redirect
/// de-obfuscation, signature hashing previews).
pub const BODY_PREVIEW_LEN: usize = 4096;

/// Maximum decoded (post-`Content-Encoding`) body size the decode gate
/// will materialize — the zip-bomb guard. A kilobyte-scale gzip body
/// can claim gigabytes of output; decoding is aborted at this bound
/// (the partial output is discarded, the still-encoded wire bytes are
/// kept, and [`IngestReport::decode_cap_exceeded`] counts the event).
/// 8 MiB comfortably covers every payload the detector inspects —
/// classification reads magic bytes and the [`BODY_PREVIEW_LEN`]
/// prefix, and real drive-by payloads are single-digit megabytes.
pub const MAX_DECODED_BODY_BYTES: usize = 8 << 20;

/// One paired HTTP request/response exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpTransaction {
    /// Monotone ingest sequence number: the transaction's position in
    /// the stream it was ingested from. Timestamps can tie (coarse
    /// capture clocks, batched exports), so every replay path orders by
    /// `(ts, seq)` — a total order — instead of `ts` alone, and the
    /// sharded stream engine uses `seq` as the merge tie-break when
    /// recombining per-shard alert streams. [`TransactionExtractor`]
    /// numbers transactions in emission order; [`assign_seq`] renumbers
    /// a merged or re-sorted stream.
    pub seq: u64,
    /// Time the request head was observed (seconds since epoch).
    pub ts: f64,
    /// Time the response body completed.
    pub resp_ts: f64,
    /// Client endpoint (the request sender).
    pub client: Endpoint,
    /// Server endpoint.
    pub server: Endpoint,
    /// Server hostname: the `Host` header when present, otherwise the
    /// server IP rendered as a string.
    pub host: String,
    /// Request method.
    pub method: Method,
    /// Request URI as sent.
    pub uri: String,
    /// All request headers.
    pub req_headers: HeaderMap,
    /// Response status code (0 when the response was never observed).
    pub status: u16,
    /// All response headers.
    pub resp_headers: HeaderMap,
    /// Classified payload type of the response body.
    pub payload_class: PayloadClass,
    /// Response body size in bytes.
    pub payload_size: usize,
    /// First [`BODY_PREVIEW_LEN`] bytes of the response body.
    pub body_preview: Vec<u8>,
    /// FNV-1a digest of the full response body (payload identity for the
    /// comparator engines).
    pub payload_digest: u64,
}

impl HttpTransaction {
    /// The `Referer` request header, if set and non-empty.
    pub fn referer(&self) -> Option<&str> {
        self.req_headers.get("Referer").filter(|v| !v.is_empty())
    }

    /// The `Location` response header, if set.
    pub fn location(&self) -> Option<&str> {
        self.resp_headers.get("Location")
    }

    /// The `User-Agent` request header, if set.
    pub fn user_agent(&self) -> Option<&str> {
        self.req_headers.get("User-Agent")
    }

    /// The response `Content-Type`, if set.
    pub fn content_type(&self) -> Option<&str> {
        self.resp_headers.get("Content-Type")
    }

    /// Whether the `DNT` (do-not-track) request header is enabled.
    pub fn dnt_enabled(&self) -> bool {
        self.req_headers.get("DNT").is_some_and(|v| v.trim() == "1")
    }

    /// The `X-Flash-Version` request header, if set.
    pub fn x_flash_version(&self) -> Option<&str> {
        self.req_headers.get("X-Flash-Version")
    }

    /// A session identifier: the `Cookie` header when present, otherwise a
    /// session-id-like URI query parameter (`PHPSESSID`, `sessionid`,
    /// `sid`, `jsessionid`).
    pub fn session_id(&self) -> Option<String> {
        if let Some(c) = self.req_headers.get("Cookie") {
            return Some(c.to_string());
        }
        let query = self.uri.split_once('?')?.1;
        for kv in query.split('&') {
            let (k, v) = kv.split_once('=')?;
            if ["phpsessid", "sessionid", "sid", "jsessionid"]
                .iter()
                .any(|key| k.eq_ignore_ascii_case(key))
            {
                return Some(v.to_string());
            }
        }
        None
    }

    /// Whether the response is a redirect (3xx status).
    pub fn is_redirect(&self) -> bool {
        self.status / 100 == 3
    }

    /// Status class (1–5), or 0 when no response was observed.
    pub fn status_class(&self) -> u16 {
        self.status / 100
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Computes the 64-bit FNV-1a digest of `data`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Digests many bodies, producing exactly `fnv1a(bodies[i])` in
/// `out[i]` — but several times faster on a batch.
///
/// FNV-1a is a strict dependency chain (`xor` then multiply per byte),
/// so a single body digests at the multiplier's *latency*, not its
/// throughput. Bodies are independent, though: interleaving four of them
/// keeps four multiply chains in flight, and the out-of-order core
/// overlaps them. When a lane's body ends it is refilled from the queue;
/// a non-full tail falls back to the sequential form. The per-body
/// values are bit-identical to [`fnv1a`] by construction.
pub fn fnv1a_many(bodies: &[&[u8]], out: &mut Vec<u64>) {
    out.clear();
    // Empty bodies hash to the offset basis; pre-fill so the lane refill
    // can skip them without occupying a lane.
    out.resize(bodies.len(), FNV_OFFSET);
    let mut next = 0usize;
    let mut lane = [usize::MAX; 4];
    let mut pos = [0usize; 4];
    let mut hash = [FNV_OFFSET; 4];
    loop {
        for l in 0..4 {
            while lane[l] == usize::MAX && next < bodies.len() {
                if bodies[next].is_empty() {
                    next += 1;
                    continue;
                }
                lane[l] = next;
                pos[l] = 0;
                hash[l] = FNV_OFFSET;
                next += 1;
            }
        }
        let active = lane.iter().filter(|&&i| i != usize::MAX).count();
        if active == 0 {
            return;
        }
        if active < 4 {
            // Queue exhausted: finish the stragglers sequentially.
            for l in 0..4 {
                if lane[l] != usize::MAX {
                    let body = bodies[lane[l]];
                    let mut h = hash[l];
                    for &b in &body[pos[l]..] {
                        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
                    }
                    out[lane[l]] = h;
                    lane[l] = usize::MAX;
                }
            }
            continue;
        }
        // All four lanes occupied: advance them in lockstep until the
        // shortest remaining body ends.
        let step = (0..4).map(|l| bodies[lane[l]].len() - pos[l]).min().expect("4 lanes");
        let s0 = &bodies[lane[0]][pos[0]..pos[0] + step];
        let s1 = &bodies[lane[1]][pos[1]..pos[1] + step];
        let s2 = &bodies[lane[2]][pos[2]..pos[2] + step];
        let s3 = &bodies[lane[3]][pos[3]..pos[3] + step];
        let (mut h0, mut h1, mut h2, mut h3) = (hash[0], hash[1], hash[2], hash[3]);
        for j in 0..step {
            h0 = (h0 ^ s0[j] as u64).wrapping_mul(FNV_PRIME);
            h1 = (h1 ^ s1[j] as u64).wrapping_mul(FNV_PRIME);
            h2 = (h2 ^ s2[j] as u64).wrapping_mul(FNV_PRIME);
            h3 = (h3 ^ s3[j] as u64).wrapping_mul(FNV_PRIME);
        }
        hash = [h0, h1, h2, h3];
        for l in 0..4 {
            pos[l] += step;
            if pos[l] == bodies[lane[l]].len() {
                out[lane[l]] = hash[l];
                lane[l] = usize::MAX;
            }
        }
    }
}

/// A response entity body: borrowed from reassembled stream storage when
/// the framing permits (`Content-Length`, read-until-close), owned when
/// chunk decoding or content-coding removal had to materialize it.
#[derive(Debug)]
pub(crate) enum Body<'a> {
    Borrowed(&'a [u8]),
    Owned(Vec<u8>),
}

impl<'a> Body<'a> {
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            Body::Borrowed(b) => b,
            Body::Owned(v) => v,
        }
    }

    fn into_owned(self) -> Vec<u8> {
        match self {
            Body::Borrowed(b) => b.to_vec(),
            Body::Owned(v) => v,
        }
    }
}

/// Reconstructs [`HttpTransaction`]s from captured packets.
#[derive(Debug, Default)]
pub struct TransactionExtractor {
    reassembler: StreamReassembler,
    /// Packets that failed Ethernet/IPv4/TCP decoding.
    dropped_decode: u64,
    /// Well-formed packets that are not IPv4/TCP.
    non_tcp: u64,
}

impl TransactionExtractor {
    /// Creates an empty extractor.
    pub fn new() -> Self {
        TransactionExtractor::default()
    }

    /// Feeds one captured packet (Ethernet frame). Non-IPv4 and non-TCP
    /// packets and undecodable packets are ignored (but counted for
    /// [`TransactionExtractor::finish_lenient`]), matching capture-tool
    /// behaviour on mixed traffic.
    pub fn push_packet(&mut self, packet: &Packet) {
        let Ok(eth) = EtherFrame::parse(&packet.data) else {
            self.dropped_decode += 1;
            return;
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            self.non_tcp += 1;
            return;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
            self.dropped_decode += 1;
            return;
        };
        if ip.protocol != PROTO_TCP {
            self.non_tcp += 1;
            return;
        }
        let Ok(tcp) = TcpSegment::parse(ip.payload) else {
            self.dropped_decode += 1;
            return;
        };
        let key = FlowKey::new(
            Endpoint::new(ip.src, tcp.src_port),
            Endpoint::new(ip.dst, tcp.dst_port),
        );
        self.reassembler.push(packet.ts, key, &tcp);
    }

    /// Finishes extraction: reassembles all flows, pairs requests with
    /// responses per connection, and returns transactions sorted by request
    /// timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::HttpSyntax`] when a stream that begins like
    /// an HTTP message is malformed. Streams that do not look like HTTP at
    /// all are skipped silently.
    pub fn finish(self) -> Result<Vec<HttpTransaction>> {
        let streams = self.reassembler.into_streams();
        let mut connections: BTreeMap<(Endpoint, Endpoint), (Option<Stream>, Option<Stream>)> =
            BTreeMap::new();
        for stream in streams {
            let id = stream.key.connection_id();
            let entry = connections.entry(id).or_default();
            if looks_like_request(&stream.data) {
                entry.0 = Some(stream);
            } else {
                entry.1 = Some(stream);
            }
        }
        let mut out = Vec::new();
        for (_, (req, resp)) in connections {
            let Some(req_stream) = req else { continue };
            out.extend(pair_connection(req_stream.as_view(), resp.as_ref().map(Stream::as_view))?);
        }
        out.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        assign_seq(&mut out);
        Ok(out)
    }

    /// Convenience: extracts transactions from a full packet list.
    ///
    /// # Errors
    ///
    /// See [`TransactionExtractor::finish`].
    pub fn extract(packets: &[Packet]) -> Result<Vec<HttpTransaction>> {
        let mut ex = TransactionExtractor::new();
        for p in packets {
            ex.push_packet(p);
        }
        ex.finish()
    }

    /// Finishes extraction in graceful-degradation mode: every parseable
    /// prefix of every stream is salvaged, malformed remainders are
    /// quarantined, and nothing fails.
    ///
    /// Where [`TransactionExtractor::finish`] aborts on the first
    /// malformed HTTP stream, this variant keeps the messages parsed
    /// before the error (counting the stream as salvaged, or discarded
    /// when nothing was recoverable), counts non-HTTP streams instead of
    /// silently dropping them, and records gzip/chunked decode failures
    /// — all in `report`.
    pub fn finish_lenient(self, report: &mut IngestReport) -> Vec<HttpTransaction> {
        report.packets_dropped_decode += self.dropped_decode;
        report.packets_non_tcp += self.non_tcp;
        let streams = self.reassembler.into_streams_counting(&mut report.reassembly_gaps);
        report.streams_total += streams.len() as u64;
        let mut connections: BTreeMap<(Endpoint, Endpoint), (Option<Stream>, Option<Stream>)> =
            BTreeMap::new();
        for stream in streams {
            let id = stream.key.connection_id();
            let entry = connections.entry(id).or_default();
            let slot = if looks_like_request(&stream.data) { &mut entry.0 } else { &mut entry.1 };
            if let Some(displaced) = slot.replace(stream) {
                count_unpaired(report, &displaced.data);
            }
        }
        let mut out = Vec::new();
        for (_, (req, resp)) in connections {
            let Some(req_stream) = req else {
                if let Some(r) = resp {
                    count_unpaired(report, &r.data);
                }
                continue;
            };
            pair_connection_lenient(
                req_stream.as_view(),
                resp.as_ref().map(Stream::as_view),
                report,
                &mut out,
                None,
            );
        }
        out.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        assign_seq(&mut out);
        report.transactions_recovered += out.len() as u64;
        out
    }

    /// Convenience: lenient extraction from a full packet list. Never
    /// fails; losses are accounted in `report`.
    pub fn extract_lenient(packets: &[Packet], report: &mut IngestReport) -> Vec<HttpTransaction> {
        let mut ex = TransactionExtractor::new();
        for p in packets {
            ex.push_packet(p);
        }
        ex.finish_lenient(report)
    }
}

/// Zero-copy capture → transaction pipeline: the lenient sibling of
/// [`TransactionExtractor::extract_lenient`] that never copies packet
/// bytes on the way in.
///
/// Packets are read as `(ts, range)` spans into the capture buffer
/// ([`crate::capture::read_packet_spans_lenient`]), reassembled by span
/// ([`SpanReassembler`]) with bytes materialized only for multi-segment
/// flows, parsed from [`StreamView`]s that borrow stream storage, and
/// digested in one batch ([`fnv1a_many`]) after all connections are
/// paired. Every buffer lives in the pipeline and is reused across
/// captures, so steady-state packet processing allocates nothing.
///
/// The produced transactions, their ordering, and the `report`
/// accounting are byte-identical to the copying path — asserted by the
/// equivalence tests here and the fault-injection proptests in
/// `tests/fault_injection.rs`.
#[derive(Debug, Default)]
pub struct SpanPipeline {
    spans: Vec<PacketSpan>,
    reassembler: SpanReassembler,
    streams: StreamBuf,
    digests: Vec<u64>,
}

impl SpanPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        SpanPipeline::default()
    }

    /// Extracts transactions from one capture, leniently: the zero-copy
    /// equivalent of [`TransactionExtractor::extract_lenient`] fed from
    /// [`crate::capture::read_packets_lenient`]. Never fails; losses are
    /// accounted in `report`.
    pub fn extract_lenient(
        &mut self,
        capture: &[u8],
        report: &mut IngestReport,
    ) -> Vec<HttpTransaction> {
        self.spans.clear();
        crate::capture::read_packet_spans_lenient(capture, report, &mut self.spans);
        let mut dropped_decode = 0u64;
        let mut non_tcp = 0u64;
        for span in &self.spans {
            let data = &capture[span.range.clone()];
            let Ok(eth) = EtherFrame::parse(data) else {
                dropped_decode += 1;
                continue;
            };
            if eth.ethertype != ETHERTYPE_IPV4 {
                non_tcp += 1;
                continue;
            }
            let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
                dropped_decode += 1;
                continue;
            };
            if ip.protocol != PROTO_TCP {
                non_tcp += 1;
                continue;
            }
            let Ok(tcp) = TcpSegment::parse(ip.payload) else {
                dropped_decode += 1;
                continue;
            };
            let key = FlowKey::new(
                Endpoint::new(ip.src, tcp.src_port),
                Endpoint::new(ip.dst, tcp.dst_port),
            );
            let payload = subslice_range(capture, tcp.payload);
            self.reassembler.push_span(span.ts, key, &tcp, payload);
        }
        report.packets_dropped_decode += dropped_decode;
        report.packets_non_tcp += non_tcp;
        self.reassembler.gather_streams(capture, &mut report.reassembly_gaps, &mut self.streams);
        report.streams_total += self.streams.len() as u64;
        let mut connections: BTreeMap<(Endpoint, Endpoint), (Option<usize>, Option<usize>)> =
            BTreeMap::new();
        for i in 0..self.streams.len() {
            let view = self.streams.view(capture, i);
            let entry = connections.entry(view.key.connection_id()).or_default();
            let slot = if looks_like_request(view.data) { &mut entry.0 } else { &mut entry.1 };
            if let Some(displaced) = slot.replace(i) {
                count_unpaired(report, self.streams.view(capture, displaced).data);
            }
        }
        let mut out = Vec::new();
        let mut deferred: Vec<(usize, Body<'_>)> = Vec::new();
        for (_, (req, resp)) in connections {
            let Some(ri) = req else {
                if let Some(oi) = resp {
                    count_unpaired(report, self.streams.view(capture, oi).data);
                }
                continue;
            };
            pair_connection_lenient(
                self.streams.view(capture, ri),
                resp.map(|i| self.streams.view(capture, i)),
                report,
                &mut out,
                Some(&mut deferred),
            );
        }
        // All bodies observed: digest the batch in interleaved lanes and
        // write results back by index. Must happen before the sort below
        // invalidates the queued indices.
        {
            let slices: Vec<&[u8]> = deferred.iter().map(|(_, b)| b.as_slice()).collect();
            fnv1a_many(&slices, &mut self.digests);
        }
        for (j, (idx, _)) in deferred.iter().enumerate() {
            out[*idx].payload_digest = self.digests[j];
        }
        drop(deferred);
        out.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        assign_seq(&mut out);
        report.transactions_recovered += out.len() as u64;
        out
    }

    /// Convenience: one-shot lenient extraction from raw capture bytes.
    pub fn extract_capture_lenient(
        capture: &[u8],
        report: &mut IngestReport,
    ) -> Vec<HttpTransaction> {
        SpanPipeline::new().extract_lenient(capture, report)
    }
}

/// Renumbers a transaction stream's [`HttpTransaction::seq`] ingest
/// sequence numbers to match the stream's current order. Call after
/// merging or re-sorting streams from several sources so `(ts, seq)`
/// ordering is a total order again (duplicate sequence numbers from
/// independent extractions would otherwise leave ties).
pub fn assign_seq(transactions: &mut [HttpTransaction]) {
    for (i, tx) in transactions.iter_mut().enumerate() {
        tx.seq = i as u64;
    }
}

/// Accounts for a stream that will produce no transactions: orphan HTTP
/// responses count as discarded, anything else as non-HTTP.
pub(crate) fn count_unpaired(report: &mut IngestReport, data: &[u8]) {
    if data.starts_with(b"HTTP/") {
        report.streams_discarded += 1;
    } else {
        report.streams_skipped_non_http += 1;
    }
}

/// Whether a byte stream begins with a plausible HTTP request line.
pub(crate) fn looks_like_request(data: &[u8]) -> bool {
    const METHODS: [&[u8]; 8] =
        [b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELET", b"OPTIO", b"PATCH", b"CONNE"];
    METHODS.iter().any(|m| data.starts_with(m))
}

#[derive(Debug)]
pub(crate) struct ParsedRequest {
    pub(crate) head: crate::http::RequestHead,
    pub(crate) ts: f64,
}

pub(crate) struct ParsedResponse<'a> {
    pub(crate) head: crate::http::ResponseHead,
    pub(crate) body: Body<'a>,
    pub(crate) end_ts: f64,
}

/// The parseable prefix of one HTTP stream: the messages recovered
/// before the first error (if any), and whether the stop was a
/// chunked-framing failure.
struct Salvage<T> {
    items: Vec<T>,
    error: Option<Error>,
    chunked_failure: bool,
}

impl<T> Salvage<T> {
    /// Converts to strict semantics: the first parse error fails the
    /// whole stream, discarding the salvaged prefix.
    fn strict(self) -> Result<Vec<T>> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.items),
        }
    }

    /// Folds this stream's outcome into a lenient ingest report:
    /// errored streams count as salvaged (some messages recovered) or
    /// discarded (none), and chunked failures are tallied.
    fn account(&self, report: &mut IngestReport) {
        if self.error.is_none() {
            return;
        }
        if self.chunked_failure {
            report.chunked_failures += 1;
        }
        if self.items.is_empty() {
            report.streams_discarded += 1;
        } else {
            report.streams_salvaged += 1;
        }
    }
}

fn parse_requests(stream: StreamView<'_>) -> Salvage<ParsedRequest> {
    let mut out = Salvage { items: Vec::new(), error: None, chunked_failure: false };
    let mut pos = 0usize;
    while pos < stream.data.len() {
        let head = match parse_request_head(&stream.data[pos..]) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break,
            Err(e) => {
                out.error = Some(e);
                break;
            }
        };
        let (head, consumed) = head;
        let ts = stream.timestamp_at(pos);
        let body_len = match request_body_framing(&head) {
            BodyFraming::None => 0,
            BodyFraming::Length(n) => n.min(stream.data.len() - pos - consumed),
            BodyFraming::Chunked => {
                match crate::http::decode_chunked(&stream.data[pos + consumed..]) {
                    Ok(Some((_, c))) => c,
                    Ok(None) => stream.data.len() - pos - consumed,
                    Err(e) => {
                        out.error = Some(e);
                        out.chunked_failure = true;
                        break;
                    }
                }
            }
            BodyFraming::UntilClose => stream.data.len() - pos - consumed,
        };
        pos += consumed + body_len;
        out.items.push(ParsedRequest { head, ts });
    }
    out
}

fn parse_responses<'a>(stream: StreamView<'a>, methods: &[Method]) -> Salvage<ParsedResponse<'a>> {
    let mut out = Salvage { items: Vec::new(), error: None, chunked_failure: false };
    let mut pos = 0usize;
    let mut idx = 0usize;
    while pos < stream.data.len() {
        let head = match parse_response_head(&stream.data[pos..]) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break,
            Err(e) => {
                out.error = Some(e);
                break;
            }
        };
        let (head, consumed) = head;
        let method = methods.get(idx).cloned().unwrap_or(Method::Get);
        let avail = &stream.data[pos + consumed..];
        let (body, body_consumed) = match response_body_framing(&head, &method) {
            BodyFraming::None => (Body::Borrowed(&[]), 0),
            BodyFraming::Length(n) => {
                let take = n.min(avail.len());
                (Body::Borrowed(&avail[..take]), take)
            }
            BodyFraming::Chunked => match crate::http::decode_chunked(avail) {
                Ok(Some((body, c))) => (Body::Owned(body), c),
                Ok(None) => (Body::Borrowed(avail), avail.len()),
                Err(e) => {
                    out.error = Some(e);
                    out.chunked_failure = true;
                    break;
                }
            },
            BodyFraming::UntilClose => (Body::Borrowed(avail), avail.len()),
        };
        let end = pos + consumed + body_consumed;
        let end_ts = stream.timestamp_at(end.saturating_sub(1));
        pos = end;
        idx += 1;
        out.items.push(ParsedResponse { head, body, end_ts });
    }
    out
}

fn pair_connection(
    req_stream: StreamView<'_>,
    resp_stream: Option<StreamView<'_>>,
) -> Result<Vec<HttpTransaction>> {
    let requests = parse_requests(req_stream).strict()?;
    let methods: Vec<Method> = requests.iter().map(|r| r.head.method.clone()).collect();
    let responses = match resp_stream {
        Some(s) => parse_responses(s, &methods).strict()?,
        None => Vec::new(),
    };
    let mut out = Vec::new();
    build_transactions(req_stream.key, requests, responses, None, &mut out, None);
    Ok(out)
}

/// Lenient counterpart of [`pair_connection`]: pairs whatever both
/// directions could salvage and never fails. Stream-level outcomes and
/// body-decode failures are recorded in `report`. Transactions are
/// appended to `out`; with a `deferred` queue, body digests are left at
/// 0 and queued as `(out_index, body)` for batch digesting (see
/// [`fnv1a_many`]).
pub(crate) fn pair_connection_lenient<'a>(
    req_stream: StreamView<'a>,
    resp_stream: Option<StreamView<'a>>,
    report: &mut IngestReport,
    out: &mut Vec<HttpTransaction>,
    deferred: Option<&mut Vec<(usize, Body<'a>)>>,
) {
    let requests = parse_requests(req_stream);
    requests.account(report);
    let methods: Vec<Method> = requests.items.iter().map(|r| r.head.method.clone()).collect();
    let responses = match resp_stream {
        Some(s) => {
            let r = parse_responses(s, &methods);
            r.account(report);
            r.items
        }
        None => Vec::new(),
    };
    build_transactions(req_stream.key, requests.items, responses, Some(report), out, deferred);
}

/// Removes the response's `Content-Encoding` layers from `body`.
///
/// The header is a comma-separated list of coding tokens applied in
/// order, so decoding unwraps them in reverse. Per token
/// (ASCII-case-insensitive, no allocation): `gzip` and its legacy alias
/// `x-gzip` go through [`crate::flate::gzip_decompress`], `deflate`
/// (zlib or raw) through [`crate::flate::deflate_decompress`], and
/// `identity` (or an empty token) is a no-op. Decoding stops at the
/// first failure or unknown coding (`br`, `zstd`, …) — the bytes
/// recovered so far are kept so payload sizing still works, and
/// failures are counted per coding in `report`. Decoded output is
/// bounded by [`MAX_DECODED_BODY_BYTES`]: a body that would expand past
/// it (a zip bomb) keeps its encoded bytes and is counted in
/// [`IngestReport::decode_cap_exceeded`].
fn decode_content_codings<'a>(
    body: Body<'a>,
    resp_headers: &HeaderMap,
    mut report: Option<&mut IngestReport>,
) -> Body<'a> {
    let Some(encodings) = resp_headers.get("Content-Encoding") else {
        // The common case: no coding, nothing to materialize — the body
        // stays a borrow of reassembled stream storage.
        return body;
    };
    let mut body = body.into_owned();
    for token in encodings.rsplit(',') {
        let token = token.trim();
        if token.is_empty() || token.eq_ignore_ascii_case("identity") {
            continue;
        }
        let decoded = if token.eq_ignore_ascii_case("gzip") || token.eq_ignore_ascii_case("x-gzip")
        {
            crate::flate::gzip_decompress_capped(&body, MAX_DECODED_BODY_BYTES)
        } else if token.eq_ignore_ascii_case("deflate") {
            crate::flate::deflate_decompress_capped(&body, MAX_DECODED_BODY_BYTES)
        } else {
            break;
        };
        match decoded {
            Ok(decoded) => body = decoded,
            Err(e) => {
                if let Some(r) = report.as_deref_mut() {
                    match e {
                        Error::DecodedTooLarge { .. } => r.decode_cap_exceeded += 1,
                        _ if token.eq_ignore_ascii_case("deflate") => r.deflate_failures += 1,
                        _ => r.gzip_failures += 1,
                    }
                }
                break;
            }
        }
    }
    Body::Owned(body)
}

/// FIFO-pairs parsed requests with parsed responses on one connection,
/// appending to `out`. With a `report`, body decode failures are counted
/// per coding (the raw body is kept either way). With a `deferred`
/// queue, `payload_digest` is left at 0 and the body queued as
/// `(out_index, body)` so the caller can batch-digest every body at once
/// ([`fnv1a_many`]) — FNV's serial dependency chain makes per-body
/// digesting the single hottest step of ingest.
fn build_transactions<'a>(
    key: FlowKey,
    requests: Vec<ParsedRequest>,
    responses: Vec<ParsedResponse<'a>>,
    mut report: Option<&mut IngestReport>,
    out: &mut Vec<HttpTransaction>,
    mut deferred: Option<&mut Vec<(usize, Body<'a>)>>,
) {
    let client = key.src;
    let server = key.dst;
    let mut responses = responses.into_iter();
    for req in requests {
        let resp = responses.next();
        let (mut tx, body) =
            synthesize_transaction(client, server, req, resp, report.as_deref_mut());
        if deferred.is_none() {
            tx.payload_digest = fnv1a(body.as_slice());
        }
        out.push(tx);
        if let Some(q) = deferred.as_deref_mut() {
            q.push((out.len() - 1, body));
        }
    }
}

/// Synthesizes one [`HttpTransaction`] from a parsed request and its
/// (optional) parsed response: Host resolution, the decode gate,
/// payload classification, and the body preview — shared verbatim by
/// the offline pairing paths above and the live wire tap
/// ([`crate::wiretap`]), so a transaction observed on the wire is
/// byte-identical to the same exchange extracted from a capture.
///
/// `payload_digest` is left at 0; the caller digests `body` directly
/// ([`fnv1a`]) or queues it for batch digesting ([`fnv1a_many`]).
pub(crate) fn synthesize_transaction<'a>(
    client: Endpoint,
    server: Endpoint,
    req: ParsedRequest,
    resp: Option<ParsedResponse<'a>>,
    report: Option<&mut IngestReport>,
) -> (HttpTransaction, Body<'a>) {
    let host = req
        .head
        .headers
        .get("Host")
        .map(str::to_string)
        .unwrap_or_else(|| server.addr.to_string());
    let (status, resp_headers, body, end_ts) = match resp {
        Some(r) => (r.head.status, r.head.headers, r.body, r.end_ts),
        None => (0, HeaderMap::new(), Body::Borrowed(&[][..]), req.ts),
    };
    // Entity bodies are exposed *decoded*: content codings are
    // removed so payload classification, digests, and redirect mining
    // see the real content (where meta-refresh tags and obfuscated
    // JavaScript actually live). Undecodable bodies fall back to the
    // raw bytes, counted per coding.
    let body = decode_content_codings(body, &resp_headers, report);
    let bytes = body.as_slice();
    let content_type = resp_headers.get("Content-Type").map(str::to_string);
    let payload_class = classify(&req.head.uri, content_type.as_deref(), bytes.len(), bytes);
    let preview_len = bytes.len().min(BODY_PREVIEW_LEN);
    let tx = HttpTransaction {
        seq: 0, // numbered in emission order by the caller
        ts: req.ts,
        resp_ts: end_ts,
        client,
        server,
        host,
        method: req.head.method,
        uri: req.head.uri,
        req_headers: req.head.headers,
        status,
        resp_headers,
        payload_class,
        payload_size: bytes.len(),
        payload_digest: 0,
        body_preview: bytes[..preview_len].to_vec(),
    };
    (tx, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reassembly::{Endpoint, FlowKey};
    use std::net::Ipv4Addr;

    fn mk_stream(key: FlowKey, data: &[u8], ts: f64) -> Stream {
        Stream { key, data: data.to_vec(), timeline: vec![(0, ts)], closed: true }
    }

    fn pair(req: &Stream, resp: Option<&Stream>) -> crate::Result<Vec<HttpTransaction>> {
        pair_connection(req.as_view(), resp.map(Stream::as_view))
    }

    fn pair_lenient(
        req: &Stream,
        resp: Option<&Stream>,
        report: &mut IngestReport,
    ) -> Vec<HttpTransaction> {
        let mut out = Vec::new();
        pair_connection_lenient(req.as_view(), resp.map(Stream::as_view), report, &mut out, None);
        out
    }

    fn conn() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 50000),
            Endpoint::new(Ipv4Addr::new(203, 0, 113, 9), 80),
        )
    }

    #[test]
    fn pairs_single_transaction() {
        let req = b"GET /page.html HTTP/1.1\r\nHost: example.com\r\nReferer: http://google.com/\r\n\r\n";
        let resp = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello";
        let txs = pair(
            &mk_stream(conn(), req, 1.0),
            Some(&mk_stream(conn().reversed(), resp, 1.2)),
        )
        .unwrap();
        assert_eq!(txs.len(), 1);
        let t = &txs[0];
        assert_eq!(t.host, "example.com");
        assert_eq!(t.method, Method::Get);
        assert_eq!(t.status, 200);
        assert_eq!(t.payload_size, 5);
        assert_eq!(t.payload_class, PayloadClass::Html);
        assert_eq!(t.referer(), Some("http://google.com/"));
        assert_eq!(t.ts, 1.0);
    }

    #[test]
    fn pairs_pipelined_transactions_in_order() {
        let req = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b.js HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nAHTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nBB";
        let txs = pair(
            &mk_stream(conn(), req, 1.0),
            Some(&mk_stream(conn().reversed(), resp, 1.1)),
        )
        .unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].uri, "/a");
        assert_eq!(txs[0].status, 200);
        assert_eq!(txs[1].uri, "/b.js");
        assert_eq!(txs[1].status, 404);
        assert_eq!(txs[1].payload_size, 2);
    }

    #[test]
    fn missing_response_yields_status_zero() {
        let req = b"POST /exfil HTTP/1.1\r\nHost: cc.evil\r\nContent-Length: 4\r\n\r\ndata";
        let txs = pair(&mk_stream(conn(), req, 2.0), None).unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].status, 0);
        assert_eq!(txs[0].method, Method::Post);
        assert_eq!(txs[0].payload_class, PayloadClass::Empty);
    }

    #[test]
    fn chunked_response_body_is_decoded() {
        let req = b"GET /d.bin HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nMZxx\r\n3\r\nyyy\r\n0\r\n\r\n";
        let txs = pair(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), resp, 0.0)),
        )
        .unwrap();
        assert_eq!(txs[0].payload_size, 7);
        assert_eq!(txs[0].payload_class, PayloadClass::Exe); // MZ magic
    }

    #[test]
    fn until_close_body_consumes_rest() {
        let req = b"GET /v HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = b"HTTP/1.1 200 OK\r\n\r\nstream-until-close";
        let txs = pair(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), resp, 0.0)),
        )
        .unwrap();
        assert_eq!(txs[0].payload_size, 18);
    }

    #[test]
    fn session_id_from_cookie_and_query() {
        let mut t = HttpTransaction {
            seq: 0,
            ts: 0.0,
            resp_ts: 0.0,
            client: Endpoint::new(Ipv4Addr::LOCALHOST, 1),
            server: Endpoint::new(Ipv4Addr::LOCALHOST, 80),
            host: "h".into(),
            method: Method::Get,
            uri: "/x?PHPSESSID=abc123&o=1".into(),
            req_headers: HeaderMap::new(),
            status: 200,
            resp_headers: HeaderMap::new(),
            payload_class: PayloadClass::Html,
            payload_size: 0,
            body_preview: Vec::new(),
            payload_digest: 0,
        };
        assert_eq!(t.session_id(), Some("abc123".into()));
        t.req_headers.append("Cookie", "sid=zzz");
        assert_eq!(t.session_id(), Some("sid=zzz".into()));
    }

    #[test]
    fn gzip_bodies_are_decoded_for_classification() {
        let html = b"<html><meta http-equiv=\"refresh\" content=\"0;url=http://next.example/\"></html>";
        let gz = crate::flate::gzip_compress(html);
        let req = b"GET /page HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: gzip\r\nContent-Length: {}\r\n\r\n",
            gz.len()
        );
        let mut resp_bytes = resp.into_bytes();
        resp_bytes.extend_from_slice(&gz);
        let txs = pair(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp_bytes, 0.1)),
        )
        .unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].payload_class, PayloadClass::Html);
        assert_eq!(txs[0].payload_size, html.len(), "decoded size");
        assert_eq!(txs[0].payload_digest, fnv1a(html), "decoded digest");
        assert!(String::from_utf8_lossy(&txs[0].body_preview).contains("next.example"));
    }

    fn resp_with_encoding(encoding: &str, wire_body: &[u8]) -> Vec<u8> {
        let mut resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: {encoding}\r\nContent-Length: {}\r\n\r\n",
            wire_body.len()
        )
        .into_bytes();
        resp.extend_from_slice(wire_body);
        resp
    }

    fn single_tx(encoding: &str, wire_body: &[u8]) -> HttpTransaction {
        let req = b"GET /page HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = resp_with_encoding(encoding, wire_body);
        let mut txs = pair(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp, 0.1)),
        )
        .unwrap();
        assert_eq!(txs.len(), 1);
        txs.remove(0)
    }

    #[test]
    fn deflate_bodies_are_decoded_for_classification() {
        let html = b"<html><meta http-equiv=\"refresh\" content=\"0;url=http://next.example/\"></html>";
        // Both on-wire forms of `deflate`: zlib-wrapped and raw.
        for wire in [crate::flate::zlib_compress(html), crate::flate::deflate_stored(html)] {
            let tx = single_tx("deflate", &wire);
            assert_eq!(tx.payload_class, PayloadClass::Html);
            assert_eq!(tx.payload_size, html.len(), "decoded size");
            assert_eq!(tx.payload_digest, fnv1a(html), "decoded digest");
            assert!(String::from_utf8_lossy(&tx.body_preview).contains("next.example"));
        }
    }

    #[test]
    fn x_gzip_alias_decodes_like_gzip() {
        let body = b"<html>aliased</html>";
        let tx = single_tx("x-gzip", &crate::flate::gzip_compress(body));
        assert_eq!(tx.payload_size, body.len());
        assert_eq!(tx.payload_digest, fnv1a(body));
    }

    #[test]
    fn content_encoding_token_list_is_parsed_not_substring_matched() {
        let body = b"<html>token list</html>";
        // Multi-token values decode the real coding, `identity` is a
        // no-op in any position, and case/whitespace are irrelevant.
        for enc in ["gzip, identity", "identity, gzip", " GZIP ", "identity,\tgzip"] {
            let tx = single_tx(enc, &crate::flate::gzip_compress(body));
            assert_eq!(tx.payload_size, body.len(), "encoding {enc:?}");
            assert_eq!(tx.payload_digest, fnv1a(body), "encoding {enc:?}");
        }
        // A non-encoding token merely *containing* "gzip" must not
        // trigger gzip decoding (the old substring bug).
        let raw = b"not actually compressed";
        let tx = single_tx("not-gzip-at-all", raw);
        assert_eq!(tx.payload_size, raw.len(), "raw bytes kept");
        assert_eq!(tx.payload_digest, fnv1a(raw));
    }

    #[test]
    fn identity_encoding_is_a_no_op() {
        let raw = b"plain text body";
        let tx = single_tx("identity", raw);
        assert_eq!(tx.payload_size, raw.len());
        assert_eq!(tx.payload_digest, fnv1a(raw));
    }

    #[test]
    fn stacked_codings_unwrap_in_reverse_order() {
        let body = b"<html>double wrapped</html>";
        // Applied deflate-then-gzip on the wire ⇒ listed "deflate, gzip"
        // ⇒ decoder unwraps gzip first, then deflate.
        let wire = crate::flate::gzip_compress(&crate::flate::zlib_compress(body));
        let tx = single_tx("deflate, gzip", &wire);
        assert_eq!(tx.payload_size, body.len());
        assert_eq!(tx.payload_digest, fnv1a(body));
    }

    #[test]
    fn lenient_counts_deflate_failure_and_keeps_raw_bytes() {
        let garbage = [0x07, 0xff, 0x12, 0x34, 0x56];
        let req = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = resp_with_encoding("deflate", &garbage);
        let mut report = IngestReport::new();
        let txs = pair_lenient(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp, 0.1)),
            &mut report,
        );
        assert_eq!(txs[0].payload_size, garbage.len(), "raw bytes kept");
        assert_eq!(report.deflate_failures, 1);
        assert_eq!(report.gzip_failures, 0);
    }

    #[test]
    fn corrupt_gzip_falls_back_to_raw_bytes() {
        let mut gz = crate::flate::gzip_compress(b"body");
        let mid = gz.len() / 2;
        gz[mid] ^= 1;
        let req = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nContent-Length: {}\r\n\r\n",
            gz.len()
        );
        let mut resp_bytes = resp.into_bytes();
        resp_bytes.extend_from_slice(&gz);
        let txs = pair(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp_bytes, 0.1)),
        )
        .unwrap();
        assert_eq!(txs[0].payload_size, gz.len(), "raw bytes kept");
    }

    #[test]
    fn zip_bomb_keeps_encoded_bytes_and_counts_cap() {
        // ~44 KiB on the wire claiming ~8.6 MiB decoded — past
        // MAX_DECODED_BODY_BYTES. The trailer (CRC/ISIZE) is garbage,
        // which is fine: the guard must trip before it is ever checked.
        let reps = MAX_DECODED_BODY_BYTES / 258 + 2;
        let mut bomb = vec![0x1f, 0x8b, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xff];
        bomb.extend_from_slice(&crate::flate::deflate_run(b'A', reps * 258 + 1));
        bomb.extend_from_slice(&[0u8; 8]);
        assert!(bomb.len() < 64 * 1024, "bomb is small on the wire: {}", bomb.len());
        let req = b"GET /big HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = resp_with_encoding("gzip", &bomb);
        let mut report = IngestReport::new();
        let txs = pair_lenient(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp, 0.1)),
            &mut report,
        );
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].payload_size, bomb.len(), "encoded wire bytes kept");
        assert_eq!(txs[0].payload_digest, fnv1a(&bomb));
        assert_eq!(report.decode_cap_exceeded, 1);
        assert_eq!(report.gzip_failures, 0, "a bomb is not a corrupt stream");
    }

    #[test]
    fn lenient_salvages_prefix_of_malformed_request_stream() {
        let req = b"GET /good HTTP/1.1\r\nHost: h\r\n\r\nGET /bad HTTP/1.1\r\nBROKENHEADER\r\n\r\n";
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let req_stream = mk_stream(conn(), req, 1.0);
        let resp_stream = mk_stream(conn().reversed(), resp, 1.2);
        assert!(pair(&req_stream, Some(&resp_stream)).is_err(), "strict fails");
        let mut report = IngestReport::new();
        let txs = pair_lenient(&req_stream, Some(&resp_stream), &mut report);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].uri, "/good");
        assert_eq!(txs[0].status, 200);
        assert_eq!(report.streams_salvaged, 1);
        assert_eq!(report.streams_discarded, 0);
    }

    #[test]
    fn lenient_discards_stream_with_nothing_recoverable() {
        // Begins like a request (passes the triage) but the head is
        // malformed from the first message.
        let req = b"GET /x HTTP/1.1\r\nNOCOLON\r\n\r\n";
        let req_stream = mk_stream(conn(), req, 1.0);
        let mut report = IngestReport::new();
        let txs = pair_lenient(&req_stream, None, &mut report);
        assert!(txs.is_empty());
        assert_eq!(report.streams_discarded, 1);
        assert_eq!(report.streams_salvaged, 0);
    }

    #[test]
    fn lenient_counts_chunked_framing_failure() {
        let req = b"GET /d HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\njunk";
        let req_stream = mk_stream(conn(), req, 0.0);
        let resp_stream = mk_stream(conn().reversed(), resp, 0.1);
        let mut report = IngestReport::new();
        let txs = pair_lenient(&req_stream, Some(&resp_stream), &mut report);
        // The request survives with no paired response (status 0).
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].status, 0);
        assert_eq!(report.chunked_failures, 1);
        assert_eq!(report.streams_discarded, 1, "response stream yielded nothing");
    }

    #[test]
    fn lenient_counts_gzip_failure_and_keeps_raw_bytes() {
        let mut gz = crate::flate::gzip_compress(b"body");
        let mid = gz.len() / 2;
        gz[mid] ^= 1;
        let req = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nContent-Length: {}\r\n\r\n",
            gz.len()
        );
        let mut resp_bytes = resp.into_bytes();
        resp_bytes.extend_from_slice(&gz);
        let mut report = IngestReport::new();
        let txs = pair_lenient(
            &mk_stream(conn(), req, 0.0),
            Some(&mk_stream(conn().reversed(), &resp_bytes, 0.1)),
            &mut report,
        );
        assert_eq!(txs[0].payload_size, gz.len());
        assert_eq!(report.gzip_failures, 1);
    }

    #[test]
    fn lenient_finish_counts_non_http_streams() {
        let mut ex = TransactionExtractor::new();
        // A TLS-looking stream on one connection, plus an orphan HTTP
        // response on another.
        let tls_key = conn();
        let orphan_key = FlowKey::new(
            Endpoint::new(Ipv4Addr::new(203, 0, 113, 9), 80),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 3), 50001),
        );
        ex.reassembler.push(
            0.1,
            tls_key,
            &crate::tcp::TcpSegment::parse(&crate::tcp::build(
                tls_key.src.port,
                tls_key.dst.port,
                1,
                0,
                crate::tcp::TcpFlags::data(),
                b"\x16\x03\x01\x02\x00",
            ))
            .unwrap(),
        );
        ex.reassembler.push(
            0.2,
            orphan_key,
            &crate::tcp::TcpSegment::parse(&crate::tcp::build(
                orphan_key.src.port,
                orphan_key.dst.port,
                1,
                0,
                crate::tcp::TcpFlags::data(),
                b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n",
            ))
            .unwrap(),
        );
        let mut report = IngestReport::new();
        let txs = ex.finish_lenient(&mut report);
        assert!(txs.is_empty());
        assert_eq!(report.streams_total, 2);
        assert_eq!(report.streams_skipped_non_http, 1);
        assert_eq!(report.streams_discarded, 1, "orphan response quarantined");
    }

    #[test]
    fn lenient_extract_counts_decode_drops() {
        let mut report = IngestReport::new();
        let packets = vec![
            Packet::new(0.0, vec![0u8; 4]),     // too short for Ethernet
            Packet::new(0.1, vec![0xffu8; 60]), // not IPv4
        ];
        let txs = TransactionExtractor::extract_lenient(&packets, &mut report);
        assert!(txs.is_empty());
        assert_eq!(report.packets_dropped_decode + report.packets_non_tcp, 2);
    }

    #[test]
    fn fnv_digest_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"payload"), fnv1a(b"payload"));
    }

    #[test]
    fn fnv1a_many_matches_sequential_digests() {
        let bodies: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            (0u8..=255).cycle().take(1000).collect(),
            b"hello world".to_vec(),
            vec![0x4d; 7],
            (0u8..=255).cycle().take(4097).collect(),
            b"xy".to_vec(),
            b"".to_vec(),
            (1u8..=255).cycle().take(333).collect(),
        ];
        let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
        let mut out = Vec::new();
        fnv1a_many(&refs, &mut out);
        assert_eq!(out.len(), bodies.len());
        for (b, d) in bodies.iter().zip(&out) {
            assert_eq!(*d, fnv1a(b));
        }
        // Fewer than four non-empty bodies exercises the sequential tail.
        let small: Vec<&[u8]> = vec![b"one", b"two2"];
        fnv1a_many(&small, &mut out);
        assert_eq!(out, vec![fnv1a(b"one"), fnv1a(b"two2")]);
    }

    fn frame(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sp: u16,
        dp: u16,
        seq: u32,
        payload: &[u8],
    ) -> Vec<u8> {
        use crate::ether::MacAddr;
        let tcp = crate::tcp::build(sp, dp, seq, 0, crate::tcp::TcpFlags::data(), payload);
        let ip = crate::ipv4::build(src, dst, PROTO_TCP, 1, &tcp);
        crate::ether::build(MacAddr::default(), MacAddr::default(), ETHERTYPE_IPV4, &ip)
    }

    /// Two conversations plus out-of-order, retransmitted, and
    /// undecodable packets — every branch both pipelines must account
    /// identically.
    fn sample_capture() -> Vec<u8> {
        let c = Ipv4Addr::new(10, 0, 0, 2);
        let s = Ipv4Addr::new(203, 0, 113, 9);
        let req1 = b"GET /a.html HTTP/1.1\r\nHost: ex.com\r\n\r\n";
        let resp1 = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let req2 = b"GET /b.js HTTP/1.1\r\nHost: ex.com\r\n\r\n";
        let resp2a: &[u8] = b"HTTP/1.1 302 Found\r\nLocation: http://n/\r\nContent-Le";
        let resp2b: &[u8] = b"ngth: 2\r\n\r\nok";
        let packets = vec![
            Packet::new(1.0, frame(c, s, 50000, 80, 1, req1)),
            Packet::new(1.1, frame(s, c, 80, 50000, 1, resp1)),
            Packet::new(1.2, frame(c, s, 50001, 80, 1, req2)),
            // Out-of-order second half, then the first, then a retransmit.
            Packet::new(1.4, frame(s, c, 80, 50001, 1 + resp2a.len() as u32, resp2b)),
            Packet::new(1.3, frame(s, c, 80, 50001, 1, resp2a)),
            Packet::new(1.5, frame(s, c, 80, 50001, 1, resp2a)),
            Packet::new(1.6, vec![0u8; 6]), // undecodable
        ];
        let mut buf = Vec::new();
        let mut w = crate::pcap::PcapWriter::new(&mut buf).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn span_pipeline_matches_packet_pipeline() {
        let capture = sample_capture();
        let mut report_a = IngestReport::new();
        let packets = crate::capture::read_packets_lenient(&capture, &mut report_a);
        let txs_a = TransactionExtractor::extract_lenient(&packets, &mut report_a);
        let mut report_b = IngestReport::new();
        let mut pipeline = SpanPipeline::new();
        let txs_b = pipeline.extract_lenient(&capture, &mut report_b);
        assert_eq!(report_a, report_b);
        assert_eq!(txs_a, txs_b);
        assert_eq!(txs_a.len(), 2);
        assert!(txs_a.iter().all(|t| t.status != 0 && t.payload_digest != 0));
        // Reusing the pipeline across captures leaks no state.
        let mut report_c = IngestReport::new();
        let txs_c = pipeline.extract_lenient(&capture, &mut report_c);
        assert_eq!(txs_c, txs_b);
        assert_eq!(report_c, report_b);
    }

    #[test]
    fn looks_like_request_discriminates() {
        assert!(looks_like_request(b"GET / HTTP/1.1\r\n"));
        assert!(looks_like_request(b"POST /x HTTP/1.1\r\n"));
        assert!(!looks_like_request(b"HTTP/1.1 200 OK\r\n"));
        assert!(!looks_like_request(b"\x16\x03\x01")); // TLS
    }
}
