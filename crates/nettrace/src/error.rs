use std::fmt;
use std::io;

/// Error type for every fallible operation in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The pcap global header carried an unknown magic number.
    BadPcapMagic(u32),
    /// A pcap record header declared an implausible capture length.
    BadCaptureLength(u32),
    /// A packet layer was shorter than its mandatory header.
    Truncated {
        /// Which layer was being parsed (e.g. `"ethernet"`).
        layer: &'static str,
        /// Bytes required by the fixed header.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A header field held a value the parser cannot accept.
    InvalidField {
        /// Which layer was being parsed.
        layer: &'static str,
        /// Description of the offending field.
        field: &'static str,
    },
    /// An HTTP message violated the grammar (bad request line, header, or
    /// chunk framing).
    HttpSyntax(String),
    /// A compressed body inflated past the configured output cap — the
    /// zip-bomb guard. Distinct from a corrupt stream: the input may be
    /// perfectly well-formed, it is just not worth materializing.
    DecodedTooLarge {
        /// The output cap (bytes) that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadPcapMagic(m) => write!(f, "unrecognized pcap magic number {m:#010x}"),
            Error::BadCaptureLength(l) => write!(f, "implausible pcap capture length {l}"),
            Error::Truncated { layer, needed, got } => {
                write!(f, "{layer} header truncated: needed {needed} bytes, got {got}")
            }
            Error::InvalidField { layer, field } => {
                write!(f, "invalid {field} in {layer} header")
            }
            Error::HttpSyntax(msg) => write!(f, "http syntax error: {msg}"),
            Error::DecodedTooLarge { cap } => {
                write!(f, "decoded body exceeds the {cap}-byte expansion cap")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::BadPcapMagic(0xdead_beef),
            Error::BadCaptureLength(1 << 30),
            Error::Truncated { layer: "tcp", needed: 20, got: 3 },
            Error::InvalidField { layer: "ipv4", field: "ihl" },
            Error::HttpSyntax("missing request line".into()),
            Error::DecodedTooLarge { cap: 4096 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let e = Error::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
