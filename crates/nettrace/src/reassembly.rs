//! TCP stream reassembly.
//!
//! Segments are grouped per unidirectional flow (source → destination
//! endpoint pair), ordered by sequence number relative to the flow's initial
//! sequence number, de-duplicated on retransmission, and flattened into a
//! contiguous byte stream. Each stream remembers the arrival timestamp of
//! every byte range so downstream consumers (the HTTP transaction extractor)
//! can attach timestamps to parsed messages.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::tcp::TcpSegment;

/// One endpoint of a TCP flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint from an address and port.
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// A unidirectional flow key (sender → receiver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Sending endpoint.
    pub src: Endpoint,
    /// Receiving endpoint.
    pub dst: Endpoint,
}

impl FlowKey {
    /// Creates a flow key.
    pub fn new(src: Endpoint, dst: Endpoint) -> Self {
        FlowKey { src, dst }
    }

    /// The same connection viewed from the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey { src: self.dst, dst: self.src }
    }

    /// A direction-independent identifier for the connection: the smaller
    /// endpoint (by address, then port) first.
    pub fn connection_id(&self) -> (Endpoint, Endpoint) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

/// A fully reassembled unidirectional byte stream.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The flow this stream belongs to.
    pub key: FlowKey,
    /// Reassembled application bytes in sequence order.
    pub data: Vec<u8>,
    /// `(byte_offset, timestamp)` markers: bytes at `offset..next_offset`
    /// arrived at `timestamp`. Sorted by offset.
    pub timeline: Vec<(usize, f64)>,
    /// Whether a FIN or RST was observed on this direction.
    pub closed: bool,
}

impl Stream {
    /// Arrival timestamp of the byte at `offset` (timestamp of the segment
    /// that carried it). Falls back to the last known timestamp for offsets
    /// past the end.
    pub fn timestamp_at(&self, offset: usize) -> f64 {
        self.as_view().timestamp_at(offset)
    }

    /// This stream as a borrowed [`StreamView`], the common currency the
    /// transaction extractor parses (shared with the zero-copy path).
    pub fn as_view(&self) -> StreamView<'_> {
        StreamView {
            key: self.key,
            data: &self.data,
            timeline: &self.timeline,
            closed: self.closed,
        }
    }
}

/// A borrowed view of one reassembled unidirectional stream.
///
/// Both reassembly paths produce this shape: [`Stream::as_view`] borrows
/// from the owned copying-path stream, and [`StreamBuf::view`] borrows
/// from the capture arena or the shared gather buffer on the zero-copy
/// path. The HTTP transaction extractor parses views, so the two paths
/// share one parser by construction.
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    /// The flow this stream belongs to.
    pub key: FlowKey,
    /// Reassembled application bytes in sequence order.
    pub data: &'a [u8],
    /// `(byte_offset, timestamp)` markers, sorted by offset.
    pub timeline: &'a [(usize, f64)],
    /// Whether a FIN or RST was observed on this direction.
    pub closed: bool,
}

impl StreamView<'_> {
    /// Arrival timestamp of the byte at `offset`; see
    /// [`Stream::timestamp_at`].
    pub fn timestamp_at(&self, offset: usize) -> f64 {
        match self.timeline.binary_search_by(|(o, _)| o.cmp(&offset)) {
            Ok(i) => self.timeline[i].1,
            Err(0) => self.timeline.first().map(|&(_, t)| t).unwrap_or(0.0),
            Err(i) => self.timeline[i - 1].1,
        }
    }
}

#[derive(Debug, Default)]
struct FlowState {
    /// Relative sequence offset → (timestamp, bytes). Keyed by offset from
    /// the initial sequence number.
    chunks: BTreeMap<u64, (f64, Vec<u8>)>,
    /// Initial sequence number (sequence of SYN, or first data byte when no
    /// SYN was captured).
    isn: Option<u32>,
    /// Whether the ISN came from a SYN (data then starts at `isn + 1`).
    isn_from_syn: bool,
    closed: bool,
}

impl FlowState {
    fn relative(&self, seq: u32) -> u64 {
        let isn = self.isn.expect("isn set before relative()");
        let base = if self.isn_from_syn { isn.wrapping_add(1) } else { isn };
        seq.wrapping_sub(base) as u64
    }
}

/// Reassembles TCP segments into per-flow byte streams.
///
/// Feed every segment of a capture with [`StreamReassembler::push`], then
/// call [`StreamReassembler::into_streams`].
#[derive(Debug, Default)]
pub struct StreamReassembler {
    flows: HashMap<FlowKey, FlowState>,
    order: Vec<FlowKey>,
}

impl StreamReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        StreamReassembler::default()
    }

    /// Adds one segment observed at time `ts` on flow `key`.
    ///
    /// Retransmitted bytes (same relative offset) keep their first copy.
    /// Segments arriving before any SYN establish the base offset from their
    /// own sequence number.
    pub fn push(&mut self, ts: f64, key: FlowKey, seg: &TcpSegment<'_>) {
        let state = match self.flows.get_mut(&key) {
            Some(s) => s,
            None => {
                self.order.push(key);
                self.flows.entry(key).or_default()
            }
        };
        if seg.flags.syn {
            if let (Some(old_isn), false) = (state.isn, state.isn_from_syn) {
                // Data outran the SYN (reordered capture): the buffered
                // chunks are keyed to a provisional base taken from the
                // first data segment. Re-key them to the SYN's base so
                // they line up with segments still to come.
                let new_base = seg.seq.wrapping_add(1);
                let diff = old_isn.wrapping_sub(new_base) as i32;
                let old = std::mem::take(&mut state.chunks);
                if diff >= 0 {
                    let shift = diff as u64;
                    state.chunks = old.into_iter().map(|(k, v)| (k + shift, v)).collect();
                }
                // diff < 0: the buffered data claimed to precede the
                // SYN — stale retransmission, dropped (same rule as
                // post-SYN segments below).
            }
            state.isn = Some(seg.seq);
            state.isn_from_syn = true;
        }
        if seg.flags.fin || seg.flags.rst {
            state.closed = true;
        }
        if seg.payload.is_empty() {
            return;
        }
        if state.isn.is_none() {
            state.isn = Some(seg.seq);
            state.isn_from_syn = false;
        }
        let rel_signed = {
            let isn = state.isn.expect("isn just ensured");
            let base = if state.isn_from_syn { isn.wrapping_add(1) } else { isn };
            seg.seq.wrapping_sub(base) as i32
        };
        if rel_signed < 0 {
            if state.isn_from_syn {
                // Data claiming to precede the SYN: stale retransmission.
                return;
            }
            // An out-of-order segment arrived below the provisional base
            // (the base was set from a later segment). Rebase the flow.
            let shift = (-(rel_signed as i64)) as u64;
            let old = std::mem::take(&mut state.chunks);
            state.chunks = old.into_iter().map(|(k, v)| (k + shift, v)).collect();
            state.isn = Some(seg.seq);
        }
        let rel = state.relative(seg.seq);
        state.chunks.entry(rel).or_insert_with(|| (ts, seg.payload.to_vec()));
    }

    /// Finishes reassembly, returning one [`Stream`] per flow in first-seen
    /// order. Gaps (lost segments) are skipped: later bytes are appended
    /// directly after earlier ones, which matches libpcap-based HTTP tooling
    /// behaviour on lossy captures. Overlapping retransmissions keep the
    /// earliest copy of each byte.
    pub fn into_streams(self) -> Vec<Stream> {
        let mut gaps = 0;
        self.into_streams_counting(&mut gaps)
    }

    /// Like [`StreamReassembler::into_streams`], but counts every
    /// skipped sequence discontinuity into `gaps` so lenient ingest can
    /// report reassembly stalls instead of papering over them.
    pub fn into_streams_counting(self, gaps: &mut u64) -> Vec<Stream> {
        let mut flows = self.flows;
        self.order
            .into_iter()
            .map(|key| {
                let state = flows.remove(&key).expect("flow recorded in order");
                let mut data = Vec::new();
                let mut timeline = Vec::new();
                let mut next_rel = 0u64;
                for (rel, (ts, bytes)) in state.chunks {
                    // A chunk starting past the write cursor means the
                    // bytes in between were never captured (the first
                    // chunk sits at rel 0 by construction unless a SYN
                    // pinned the base and the opening data was lost).
                    if rel > next_rel {
                        *gaps += 1;
                    }
                    let bytes: &[u8] = if rel < next_rel {
                        let overlap = (next_rel - rel) as usize;
                        if overlap >= bytes.len() {
                            continue; // fully retransmitted
                        }
                        &bytes[overlap..]
                    } else {
                        &bytes[..]
                    };
                    timeline.push((data.len(), ts));
                    data.extend_from_slice(bytes);
                    next_rel = rel.max(next_rel) + bytes.len() as u64;
                }
                Stream { key, data, timeline, closed: state.closed }
            })
            .collect()
    }
}

/// One buffered TCP chunk on the zero-copy path: payload bytes as a
/// range into the capture arena rather than an owned copy.
#[derive(Debug, Clone)]
struct SpanChunk {
    /// Offset from the flow base (mutable: rebases shift it).
    rel: u64,
    /// Arrival order within the flow. The gather sort's tie-break: a
    /// retransmission landing on an already-buffered offset loses to the
    /// first arrival, exactly as the copying path's
    /// `chunks.entry(rel).or_insert_with(..)` drops it at push time.
    order: u32,
    ts: f64,
    range: Range<usize>,
}

#[derive(Debug, Default)]
struct SpanFlowState {
    chunks: Vec<SpanChunk>,
    next_order: u32,
    isn: Option<u32>,
    isn_from_syn: bool,
    closed: bool,
}

/// Where one gathered stream's bytes live.
#[derive(Debug)]
enum StreamSrc {
    /// A single contiguous span: the stream is read straight out of the
    /// capture arena, no bytes materialized.
    Arena(Range<usize>),
    /// Multiple chunks (or an overlap/retransmit conflict) forced a
    /// gather copy into [`StreamBuf::data`].
    Gathered(Range<usize>),
}

#[derive(Debug)]
struct StreamDesc {
    key: FlowKey,
    src: StreamSrc,
    timeline: Range<usize>,
    closed: bool,
}

/// Reused output buffer for [`SpanReassembler::gather_streams`]: all
/// gathered stream bytes, timelines, and descriptors live in three flat
/// vectors whose capacity survives across captures, so steady-state
/// reassembly allocates nothing.
#[derive(Debug, Default)]
pub struct StreamBuf {
    data: Vec<u8>,
    timeline: Vec<(usize, f64)>,
    streams: Vec<StreamDesc>,
}

impl StreamBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        StreamBuf::default()
    }

    /// Discards all streams, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.timeline.clear();
        self.streams.clear();
    }

    /// Number of streams held.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no streams are held.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Borrows stream `i`. `arena` must be the capture the spans were
    /// pushed from (single-span streams read straight out of it).
    pub fn view<'a>(&'a self, arena: &'a [u8], i: usize) -> StreamView<'a> {
        let d = &self.streams[i];
        let data = match &d.src {
            StreamSrc::Arena(r) => &arena[r.clone()],
            StreamSrc::Gathered(r) => &self.data[r.clone()],
        };
        StreamView { key: d.key, data, timeline: &self.timeline[d.timeline.clone()], closed: d.closed }
    }

    /// Iterates all stream views in first-seen flow order.
    pub fn views<'a>(&'a self, arena: &'a [u8]) -> impl Iterator<Item = StreamView<'a>> {
        (0..self.streams.len()).map(move |i| self.view(arena, i))
    }
}

/// Zero-copy sibling of [`StreamReassembler`]: buffers `(ts, span)`
/// chunks instead of copied payloads, and materializes bytes only when a
/// flow has more than one chunk (gather copy) — a single-segment stream
/// stays a borrowed arena span end to end.
///
/// Ordering, rebase, retransmission, overlap, and gap semantics are
/// byte-identical to the copying path (asserted by the equivalence tests
/// below and the fault-injection proptest): the copying path's `BTreeMap`
/// insert-time dedup becomes a `(rel, arrival order)` sort plus a
/// same-`rel` skip at gather time.
///
/// The reassembler and its [`StreamBuf`] are designed for reuse:
/// [`SpanReassembler::gather_streams`] drains every flow, reclaims chunk
/// vectors into an internal pool, and leaves the map's capacity in place,
/// so a warm reassembler processes a capture without allocating.
#[derive(Debug, Default)]
pub struct SpanReassembler {
    flows: HashMap<FlowKey, SpanFlowState>,
    order: Vec<FlowKey>,
    pool: Vec<Vec<SpanChunk>>,
}

impl SpanReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        SpanReassembler::default()
    }

    /// Adds one segment observed at time `ts` on flow `key`, with
    /// `payload` locating `seg.payload` inside the capture arena
    /// (callers recover it with [`crate::arena::subslice_range`]).
    ///
    /// Semantics match [`StreamReassembler::push`] exactly.
    pub fn push_span(
        &mut self,
        ts: f64,
        key: FlowKey,
        seg: &TcpSegment<'_>,
        payload: Range<usize>,
    ) {
        debug_assert_eq!(payload.len(), seg.payload.len());
        let state = match self.flows.get_mut(&key) {
            Some(s) => s,
            None => {
                self.order.push(key);
                let state = self.flows.entry(key).or_default();
                if let Some(reclaimed) = self.pool.pop() {
                    state.chunks = reclaimed;
                }
                state
            }
        };
        if seg.flags.syn {
            if let (Some(old_isn), false) = (state.isn, state.isn_from_syn) {
                // Data outran the SYN: re-key buffered chunks to the
                // SYN's base (see the copying path for the full story).
                let new_base = seg.seq.wrapping_add(1);
                let diff = old_isn.wrapping_sub(new_base) as i32;
                if diff >= 0 {
                    let shift = diff as u64;
                    for c in &mut state.chunks {
                        c.rel += shift;
                    }
                } else {
                    // Buffered data claimed to precede the SYN: stale
                    // retransmission, dropped.
                    state.chunks.clear();
                }
            }
            state.isn = Some(seg.seq);
            state.isn_from_syn = true;
        }
        if seg.flags.fin || seg.flags.rst {
            state.closed = true;
        }
        if seg.payload.is_empty() {
            return;
        }
        if state.isn.is_none() {
            state.isn = Some(seg.seq);
            state.isn_from_syn = false;
        }
        let rel_signed = {
            let isn = state.isn.expect("isn just ensured");
            let base = if state.isn_from_syn { isn.wrapping_add(1) } else { isn };
            seg.seq.wrapping_sub(base) as i32
        };
        if rel_signed < 0 {
            if state.isn_from_syn {
                // Data claiming to precede the SYN: stale retransmission.
                return;
            }
            // Out-of-order arrival below the provisional base: rebase.
            let shift = (-(rel_signed as i64)) as u64;
            for c in &mut state.chunks {
                c.rel += shift;
            }
            state.isn = Some(seg.seq);
        }
        let rel = {
            let isn = state.isn.expect("isn set above");
            let base = if state.isn_from_syn { isn.wrapping_add(1) } else { isn };
            seg.seq.wrapping_sub(base) as u64
        };
        let order = state.next_order;
        state.next_order += 1;
        state.chunks.push(SpanChunk { rel, order, ts, range: payload });
    }

    /// Finishes reassembly into `buf` (cleared first), one stream per
    /// flow in first-seen order, counting skipped discontinuities into
    /// `gaps` — the zero-copy analogue of
    /// [`StreamReassembler::into_streams_counting`].
    ///
    /// Drains all flow state and reclaims its buffers, leaving the
    /// reassembler warm for the next capture.
    pub fn gather_streams(&mut self, arena: &[u8], gaps: &mut u64, buf: &mut StreamBuf) {
        buf.clear();
        let mut order = std::mem::take(&mut self.order);
        for &key in &order {
            let mut state = self.flows.remove(&key).expect("flow recorded in order");
            state.chunks.sort_unstable_by_key(|c| (c.rel, c.order));
            let tl_start = buf.timeline.len();
            // Fast path: one chunk — the stream IS its arena span.
            if let [c] = state.chunks.as_slice() {
                if c.rel > 0 {
                    *gaps += 1; // opening bytes lost below a pinned base
                }
                buf.timeline.push((0, c.ts));
                buf.streams.push(StreamDesc {
                    key,
                    src: StreamSrc::Arena(c.range.clone()),
                    timeline: tl_start..buf.timeline.len(),
                    closed: state.closed,
                });
            } else {
                let data_start = buf.data.len();
                let mut next_rel = 0u64;
                let mut prev_rel = u64::MAX;
                for c in &state.chunks {
                    if c.rel == prev_rel {
                        continue; // later arrival at a taken offset: dropped wholly
                    }
                    prev_rel = c.rel;
                    if c.rel > next_rel {
                        *gaps += 1;
                    }
                    let bytes = &arena[c.range.clone()];
                    let bytes = if c.rel < next_rel {
                        let overlap = (next_rel - c.rel) as usize;
                        if overlap >= bytes.len() {
                            continue; // fully retransmitted
                        }
                        &bytes[overlap..]
                    } else {
                        bytes
                    };
                    buf.timeline.push((buf.data.len() - data_start, c.ts));
                    buf.data.extend_from_slice(bytes);
                    next_rel = c.rel.max(next_rel) + bytes.len() as u64;
                }
                buf.streams.push(StreamDesc {
                    key,
                    src: StreamSrc::Gathered(data_start..buf.data.len()),
                    timeline: tl_start..buf.timeline.len(),
                    closed: state.closed,
                });
            }
            state.chunks.clear();
            self.pool.push(std::mem::take(&mut state.chunks));
        }
        order.clear();
        self.order = order;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{self, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 40000),
            Endpoint::new(Ipv4Addr::new(93, 184, 216, 34), 80),
        )
    }

    fn push_data(r: &mut StreamReassembler, ts: f64, k: FlowKey, seq: u32, data: &[u8]) {
        let raw = tcp::build(k.src.port, k.dst.port, seq, 0, TcpFlags::data(), data);
        let seg = TcpSegment::parse(&raw).unwrap();
        r.push(ts, k, &seg);
    }

    #[test]
    fn in_order_segments_concatenate() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"hello ");
        push_data(&mut r, 2.0, key(), 106, b"world");
        let streams = r.into_streams();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].data, b"hello world");
    }

    #[test]
    fn out_of_order_segments_are_sorted() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 2.0, key(), 106, b"world");
        push_data(&mut r, 1.0, key(), 100, b"hello ");
        assert_eq!(r.into_streams()[0].data, b"hello world");
    }

    #[test]
    fn syn_arriving_after_data_rebases_buffered_chunks() {
        // Multi-queue reordering can deliver data segments before the
        // SYN. The buffered bytes must be re-keyed to the SYN's base:
        // no false gap, no dropped bytes.
        let mut r = StreamReassembler::new();
        push_data(&mut r, 2.0, key(), 6400, b"world"); // second chunk, first to arrive
        let syn = tcp::build(key().src.port, key().dst.port, 4999, 0, TcpFlags::syn(), b"");
        r.push(1.0, key(), &TcpSegment::parse(&syn).unwrap());
        push_data(&mut r, 1.5, key(), 5000, &[b'x'; 1400]);
        let mut gaps = 0;
        let streams = r.into_streams_counting(&mut gaps);
        assert_eq!(gaps, 0, "reordering is not loss");
        assert_eq!(streams[0].data.len(), 1405);
        assert!(streams[0].data.ends_with(b"world"));
    }

    #[test]
    fn stale_data_below_a_late_syn_is_dropped() {
        // A segment below the SYN's base is a stale retransmission from
        // an earlier connection on the same 4-tuple; a late SYN must
        // discard it rather than splice it in.
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"stale");
        let syn = tcp::build(key().src.port, key().dst.port, 499, 0, TcpFlags::syn(), b"");
        r.push(2.0, key(), &TcpSegment::parse(&syn).unwrap());
        push_data(&mut r, 3.0, key(), 500, b"fresh");
        let mut gaps = 0;
        let streams = r.into_streams_counting(&mut gaps);
        assert_eq!(gaps, 0);
        assert_eq!(streams[0].data, b"fresh");
    }

    #[test]
    fn retransmissions_are_deduplicated() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"abc");
        push_data(&mut r, 2.0, key(), 100, b"abc");
        push_data(&mut r, 3.0, key(), 103, b"def");
        assert_eq!(r.into_streams()[0].data, b"abcdef");
    }

    #[test]
    fn partial_overlap_keeps_first_copy() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"abcd");
        push_data(&mut r, 2.0, key(), 102, b"CDEF");
        assert_eq!(r.into_streams()[0].data, b"abcdEF");
    }

    #[test]
    fn syn_consumes_one_sequence_number() {
        let mut r = StreamReassembler::new();
        let k = key();
        let syn = tcp::build(k.src.port, k.dst.port, 999, 0, TcpFlags::syn(), b"");
        r.push(0.5, k, &TcpSegment::parse(&syn).unwrap());
        push_data(&mut r, 1.0, k, 1000, b"data");
        let s = r.into_streams();
        assert_eq!(s[0].data, b"data");
        assert!(!s[0].closed);
    }

    #[test]
    fn fin_marks_stream_closed() {
        let mut r = StreamReassembler::new();
        let k = key();
        push_data(&mut r, 1.0, k, 1, b"x");
        let fin = tcp::build(k.src.port, k.dst.port, 2, 0, TcpFlags::fin(), b"");
        r.push(2.0, k, &TcpSegment::parse(&fin).unwrap());
        assert!(r.into_streams()[0].closed);
    }

    #[test]
    fn directions_are_separate_flows() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 1, b"request");
        push_data(&mut r, 2.0, key().reversed(), 1, b"response");
        let streams = r.into_streams();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].data, b"request");
        assert_eq!(streams[1].data, b"response");
        assert_eq!(streams[0].key.connection_id(), streams[1].key.connection_id());
    }

    #[test]
    fn timeline_maps_offsets_to_timestamps() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"aaaa");
        push_data(&mut r, 5.0, key(), 104, b"bbbb");
        let s = &r.into_streams()[0];
        assert_eq!(s.timestamp_at(0), 1.0);
        assert_eq!(s.timestamp_at(3), 1.0);
        assert_eq!(s.timestamp_at(4), 5.0);
        assert_eq!(s.timestamp_at(100), 5.0); // past-the-end falls back
    }

    #[test]
    fn gap_is_skipped_rather_than_stalling() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"abc");
        push_data(&mut r, 2.0, key(), 200, b"xyz");
        assert_eq!(r.into_streams()[0].data, b"abcxyz");
    }

    #[test]
    fn gaps_are_counted_per_discontinuity() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"abc"); // rel 0
        push_data(&mut r, 2.0, key(), 200, b"xyz"); // gap 1
        push_data(&mut r, 3.0, key(), 300, b"pqr"); // gap 2
        push_data(&mut r, 4.0, key().reversed(), 1, b"clean");
        let mut gaps = 0;
        let streams = r.into_streams_counting(&mut gaps);
        assert_eq!(streams.len(), 2);
        assert_eq!(gaps, 2);
    }

    #[test]
    fn contiguous_and_retransmitted_streams_count_no_gaps() {
        let mut r = StreamReassembler::new();
        push_data(&mut r, 1.0, key(), 100, b"abc");
        push_data(&mut r, 2.0, key(), 100, b"abc"); // retransmit
        push_data(&mut r, 3.0, key(), 103, b"def");
        let mut gaps = 0;
        r.into_streams_counting(&mut gaps);
        assert_eq!(gaps, 0);
    }

    /// One scripted segment: `(ts, key, seq, flags, payload)`.
    type Scripted = (f64, FlowKey, u32, TcpFlags, &'static [u8]);

    /// Runs the same script through both reassemblers and asserts the
    /// resulting streams, timelines, closed flags, and gap counts are
    /// identical. The span path parses segments borrowed from a single
    /// arena and recovers payload offsets via `subslice_range`, exactly
    /// like the production pipeline.
    fn assert_paths_equivalent(script: &[Scripted]) {
        // Copying path.
        let mut legacy = StreamReassembler::new();
        for &(ts, k, seq, flags, data) in script {
            let raw = tcp::build(k.src.port, k.dst.port, seq, 0, flags, data);
            legacy.push(ts, k, &TcpSegment::parse(&raw).unwrap());
        }
        let mut legacy_gaps = 0;
        let streams = legacy.into_streams_counting(&mut legacy_gaps);

        // Span path: all segments concatenated into one arena.
        let mut arena = Vec::new();
        let mut seg_at = Vec::new();
        for &(_, k, seq, flags, data) in script {
            let raw = tcp::build(k.src.port, k.dst.port, seq, 0, flags, data);
            seg_at.push(arena.len()..arena.len() + raw.len());
            arena.extend_from_slice(&raw);
        }
        let mut spans = SpanReassembler::new();
        for (&(ts, k, _, _, _), raw_range) in script.iter().zip(&seg_at) {
            let seg = TcpSegment::parse(&arena[raw_range.clone()]).unwrap();
            let payload = crate::arena::subslice_range(&arena, seg.payload);
            spans.push_span(ts, k, &seg, payload);
        }
        let mut span_gaps = 0;
        let mut buf = StreamBuf::new();
        spans.gather_streams(&arena, &mut span_gaps, &mut buf);

        assert_eq!(legacy_gaps, span_gaps, "gap counts diverge");
        assert_eq!(streams.len(), buf.len(), "stream counts diverge");
        for (s, v) in streams.iter().zip(buf.views(&arena)) {
            assert_eq!(s.key, v.key);
            assert_eq!(s.data.as_slice(), v.data, "bytes diverge on {}", s.key.src);
            assert_eq!(s.timeline.as_slice(), v.timeline);
            assert_eq!(s.closed, v.closed);
        }
    }

    #[test]
    fn span_path_matches_copying_path_on_clean_and_hostile_scripts() {
        let k = key();
        let r = key().reversed();
        let scripts: &[&[Scripted]] = &[
            // Clean two-direction exchange with SYNs and FIN.
            &[
                (0.5, k, 999, TcpFlags::syn(), b""),
                (1.0, k, 1000, TcpFlags::data(), b"GET / HTTP/1.1\r\n\r\n"),
                (1.5, r, 499, TcpFlags::syn(), b""),
                (2.0, r, 500, TcpFlags::data(), b"HTTP/1.1 200 OK\r\n"),
                (2.5, r, 517, TcpFlags::data(), b"\r\nbody"),
                (3.0, k, 1018, TcpFlags::fin(), b""),
            ],
            // Reordering, retransmission, and partial overlap.
            &[
                (2.0, k, 106, TcpFlags::data(), b"world"),
                (1.0, k, 100, TcpFlags::data(), b"hello "),
                (3.0, k, 100, TcpFlags::data(), b"HELLO "),
                (4.0, k, 104, TcpFlags::data(), b"o WOR"),
            ],
            // Same-offset retransmit that is LONGER than the first copy:
            // the copying path drops it wholly; the span path must too.
            &[
                (1.0, k, 100, TcpFlags::data(), b"abc"),
                (2.0, k, 100, TcpFlags::data(), b"abcdef"),
                (3.0, k, 103, TcpFlags::data(), b"XYZ"),
            ],
            // Late SYN rebase plus stale below-SYN data.
            &[
                (2.0, k, 6400, TcpFlags::data(), b"world"),
                (1.0, k, 4999, TcpFlags::syn(), b""),
                (1.5, k, 5000, TcpFlags::data(), b"front"),
                (2.5, k, 4000, TcpFlags::data(), b"stale"),
            ],
            // Provisional-base rebase: below-base data arrives late.
            &[
                (1.0, k, 500, TcpFlags::data(), b"tail"),
                (2.0, k, 100, TcpFlags::data(), b"head"),
            ],
            // Gaps in both directions, RST close.
            &[
                (1.0, k, 100, TcpFlags::data(), b"abc"),
                (2.0, k, 200, TcpFlags::data(), b"xyz"),
                (3.0, r, 1, TcpFlags::data(), b"pqr"),
                (4.0, r, 900, TcpFlags::data(), b"end"),
                (5.0, r, 903, TcpFlags { rst: true, ack: true, ..TcpFlags::default() }, b""),
            ],
        ];
        for script in scripts {
            assert_paths_equivalent(script);
        }
    }

    #[test]
    fn span_reassembler_reuse_is_clean_across_captures() {
        let mut spans = SpanReassembler::new();
        let mut buf = StreamBuf::new();
        let k = key();
        for round in 0..3 {
            let raw = tcp::build(k.src.port, k.dst.port, 100, 0, TcpFlags::data(), b"abc");
            let raw2 = tcp::build(k.src.port, k.dst.port, 103, 0, TcpFlags::data(), b"def");
            let mut arena = raw.clone();
            arena.extend_from_slice(&raw2);
            let seg1 = TcpSegment::parse(&arena[..raw.len()]).unwrap();
            let p1 = crate::arena::subslice_range(&arena, seg1.payload);
            spans.push_span(1.0, k, &seg1, p1);
            let seg2 = TcpSegment::parse(&arena[raw.len()..]).unwrap();
            let p2 = crate::arena::subslice_range(&arena, seg2.payload);
            spans.push_span(2.0, k, &seg2, p2);
            let mut gaps = 0;
            spans.gather_streams(&arena, &mut gaps, &mut buf);
            assert_eq!(gaps, 0, "round {round}");
            assert_eq!(buf.len(), 1);
            assert_eq!(buf.view(&arena, 0).data, b"abcdef");
        }
    }
}
