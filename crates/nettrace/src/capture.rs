//! Format-agnostic capture reading: classic pcap or pcapng, detected by
//! magic.

use crate::arena::PacketSpan;
use crate::ingest::IngestReport;
use crate::pcap::{Packet, PcapReader, MAGIC_USEC, MAGIC_USEC_SWAPPED};
use crate::{pcapng, Error, Result};

/// The capture format of a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureFormat {
    /// Classic libpcap.
    Pcap,
    /// pcapng (Wireshark default).
    PcapNg,
}

/// Detects the capture format from leading magic bytes.
pub fn detect(bytes: &[u8]) -> Option<CaptureFormat> {
    if pcapng::is_pcapng(bytes) {
        return Some(CaptureFormat::PcapNg);
    }
    if bytes.len() >= 4 {
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if magic == MAGIC_USEC || magic == MAGIC_USEC_SWAPPED {
            return Some(CaptureFormat::Pcap);
        }
    }
    None
}

/// Reads every packet from a capture in either format.
///
/// # Errors
///
/// Returns [`Error::BadPcapMagic`] when the bytes are neither format, or
/// the underlying parser's error on corruption.
pub fn read_packets(bytes: &[u8]) -> Result<Vec<Packet>> {
    match detect(bytes) {
        Some(CaptureFormat::Pcap) => PcapReader::new(bytes)?.collect_packets(),
        Some(CaptureFormat::PcapNg) => pcapng::read_packets(bytes),
        None => {
            let magic = bytes
                .get(0..4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .unwrap_or(0);
            Err(Error::BadPcapMagic(magic))
        }
    }
}

/// Reads every salvageable packet from a capture in either format,
/// never failing.
///
/// Unreadable records are skipped (pcapng resynchronises on block
/// framing; classic pcap yields the prefix before the first corrupt
/// record) and accounted in `report`. Bytes that are not a recognisable
/// capture at all are counted as skipped and produce no packets.
pub fn read_packets_lenient(bytes: &[u8], report: &mut IngestReport) -> Vec<Packet> {
    match detect(bytes) {
        Some(CaptureFormat::Pcap) => crate::pcap::read_packets_lenient(bytes, report),
        Some(CaptureFormat::PcapNg) => pcapng::read_packets_lenient(bytes, report),
        None => {
            report.bytes_skipped += bytes.len() as u64;
            Vec::new()
        }
    }
}

/// Span-based sibling of [`read_packets_lenient`]: same salvage walk in
/// either format, but packets land in `out` as `(ts, range)` spans into
/// `bytes` instead of copied buffers. `out` is an append sink so a
/// caller-owned buffer can be reused across captures.
pub fn read_packet_spans_lenient(
    bytes: &[u8],
    report: &mut IngestReport,
    out: &mut Vec<PacketSpan>,
) {
    match detect(bytes) {
        Some(CaptureFormat::Pcap) => {
            crate::pcap::read_packet_spans_lenient(bytes, report, out);
        }
        Some(CaptureFormat::PcapNg) => {
            pcapng::read_packet_spans_lenient(bytes, report, out);
        }
        None => report.bytes_skipped += bytes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;

    fn sample_packets() -> Vec<Packet> {
        vec![Packet::new(1.0, vec![1, 2]), Packet::new(2.5, vec![3])]
    }

    #[test]
    fn detects_and_reads_classic_pcap() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for p in sample_packets() {
            w.write_packet(&p).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(detect(&buf), Some(CaptureFormat::Pcap));
        assert_eq!(read_packets(&buf).unwrap().len(), 2);
    }

    #[test]
    fn detects_and_reads_pcapng() {
        let buf = pcapng::write_packets(&sample_packets());
        assert_eq!(detect(&buf), Some(CaptureFormat::PcapNg));
        let got = read_packets(&buf).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].data, vec![3]);
    }

    #[test]
    fn rejects_unknown_formats() {
        assert_eq!(detect(b"not a capture"), None);
        assert!(matches!(read_packets(b"not a capture"), Err(Error::BadPcapMagic(_))));
        assert!(matches!(read_packets(b""), Err(Error::BadPcapMagic(0))));
    }

    #[test]
    fn lenient_dispatches_both_formats() {
        let mut classic = Vec::new();
        let mut w = PcapWriter::new(&mut classic).unwrap();
        for p in sample_packets() {
            w.write_packet(&p).unwrap();
        }
        w.finish().unwrap();
        let ng = pcapng::write_packets(&sample_packets());
        for bytes in [classic, ng] {
            let mut report = IngestReport::new();
            let got = read_packets_lenient(&bytes, &mut report);
            assert_eq!(got.len(), 2);
            assert_eq!(report.packets_read, 2);
            assert!(!report.has_loss());
        }
    }

    #[test]
    fn lenient_counts_unrecognisable_input() {
        let mut report = IngestReport::new();
        assert!(read_packets_lenient(b"not a capture", &mut report).is_empty());
        assert_eq!(report.bytes_skipped, 13);
        assert_eq!(report.packets_read, 0);
    }

    #[test]
    fn span_dispatch_matches_copying_dispatch() {
        let mut classic = Vec::new();
        let mut w = PcapWriter::new(&mut classic).unwrap();
        for p in sample_packets() {
            w.write_packet(&p).unwrap();
        }
        w.finish().unwrap();
        let ng = pcapng::write_packets(&sample_packets());
        for bytes in [classic, ng, b"not a capture".to_vec()] {
            let mut copy_report = IngestReport::new();
            let copied = read_packets_lenient(&bytes, &mut copy_report);
            let mut span_report = IngestReport::new();
            let mut spans = Vec::new();
            read_packet_spans_lenient(&bytes, &mut span_report, &mut spans);
            assert_eq!(copy_report, span_report);
            assert_eq!(copied.len(), spans.len());
            for (p, s) in copied.iter().zip(&spans) {
                assert_eq!(p.ts, s.ts);
                assert_eq!(p.data.as_slice(), s.bytes(&bytes));
            }
        }
    }
}
