//! Ethernet II frame parsing and construction.

use crate::{Error, Result};

/// Fixed Ethernet II header length in bytes.
pub const HEADER_LEN: usize = 14;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A parsed Ethernet II frame borrowing its payload from the input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtherFrame<'a> {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType field (e.g. [`ETHERTYPE_IPV4`]).
    pub ethertype: u16,
    /// Frame payload (everything after the 14-byte header).
    pub payload: &'a [u8],
}

impl<'a> EtherFrame<'a> {
    /// Parses an Ethernet II frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] when fewer than 14 bytes are available.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated { layer: "ethernet", needed: HEADER_LEN, got: data.len() });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        Ok(EtherFrame { dst: MacAddr(dst), src: MacAddr(src), ethertype, payload: &data[HEADER_LEN..] })
    }
}

/// Builds an Ethernet II frame around `payload`.
pub fn build(dst: MacAddr, src: MacAddr, ethertype: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    out.extend_from_slice(&ethertype.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let dst = MacAddr([1, 2, 3, 4, 5, 6]);
        let src = MacAddr([0xaa; 6]);
        let frame = build(dst, src, ETHERTYPE_IPV4, b"hello");
        let parsed = EtherFrame::parse(&frame).unwrap();
        assert_eq!(parsed.dst, dst);
        assert_eq!(parsed.src, src);
        assert_eq!(parsed.ethertype, ETHERTYPE_IPV4);
        assert_eq!(parsed.payload, b"hello");
    }

    #[test]
    fn truncated_frame_is_rejected() {
        assert!(matches!(
            EtherFrame::parse(&[0u8; 13]),
            Err(Error::Truncated { layer: "ethernet", .. })
        ));
    }

    #[test]
    fn empty_payload_is_allowed() {
        let frame = build(MacAddr::default(), MacAddr::default(), 0x86dd, &[]);
        let parsed = EtherFrame::parse(&frame).unwrap();
        assert!(parsed.payload.is_empty());
        assert_eq!(parsed.ethertype, 0x86dd);
    }

    #[test]
    fn mac_display_format() {
        let mac = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
    }
}
