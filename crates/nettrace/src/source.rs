//! The traffic-source abstraction: one interface over everything that
//! can deliver live [`HttpTransaction`]s — a packet-capture reader, an
//! inline proxy, a replayed file.
//!
//! A [`TrafficSource`] is *pumped*: each call does a bounded amount of
//! non-blocking work (accept connections, read sockets, parse frames)
//! and appends whatever transactions completed to the caller's vector.
//! The caller owns the loop — it interleaves pumping with feeding a
//! stream engine, checkpointing, and shutdown signalling — and the
//! [`PumpOutcome`] tells it whether to spin again immediately, sleep,
//! or wind down. This inversion keeps every source single-threaded and
//! testable: a unit test pumps by hand, the production loop adds
//! `poll(2)` and signals around the same calls.
//!
//! Shutdown is two-phase, matching the stream engine's zero-loss drain
//! contract: the loop stops pumping, calls
//! [`TrafficSource::shutdown`] — which flushes every half-open
//! connection with end-of-stream semantics (status-0 transactions for
//! unanswered requests) — and only then drains the engine. After
//! shutdown the source's [`SourceStats`] are final, and
//! `transactions == ` everything ever appended, so the caller can
//! assert `enqueued == processed + dropped` end to end.

use crate::ingest::IngestReport;
use crate::transaction::HttpTransaction;

/// What one pump accomplished, driving the caller's scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpOutcome {
    /// Work was done (bytes moved, connections accepted, transactions
    /// emitted); pump again without waiting.
    Progress,
    /// Nothing ready right now; the caller may block on readiness or
    /// sleep briefly.
    Idle,
    /// The source is finished (capture file exhausted, listener
    /// closed) and will never produce again; stop pumping.
    Exhausted,
}

/// Cumulative counters every source maintains, uniform across capture
/// and proxy so the run loop and telemetry treat them alike.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Application-layer bytes taken off the wire.
    pub bytes_in: u64,
    /// Transactions appended to callers' vectors, total.
    pub transactions: u64,
    /// Connections (or capture flows) observed.
    pub connections: u64,
    /// Connections whose observation was abandoned because a single
    /// HTTP message could not fit the tap buffer
    /// ([`crate::wiretap::ConnectionTap::overflowed`]).
    pub tap_overflows: u64,
    /// Input units the source itself lost before HTTP parsing:
    /// kernel/ring drops for capture sources, rejected connections for
    /// proxies.
    pub source_drops: u64,
}

/// A pumpable producer of live HTTP transactions.
pub trait TrafficSource {
    /// Does one bounded slice of non-blocking work, appending any
    /// transactions that completed to `out` (digested, `seq == 0` —
    /// the caller numbers them in feed order).
    ///
    /// # Errors
    ///
    /// Returns an error only for unrecoverable source failures (the
    /// listener died, the capture descriptor broke) — per-connection
    /// and per-message problems are absorbed into the ingest report
    /// and stats instead.
    fn pump(&mut self, out: &mut Vec<HttpTransaction>) -> crate::Result<PumpOutcome>;

    /// Flushes every half-open connection with end-of-stream
    /// semantics, appending final transactions to `out`. Called once,
    /// after the last `pump`; the source must be quiescent afterwards.
    fn shutdown(&mut self, out: &mut Vec<HttpTransaction>);

    /// Cumulative counters (final once `shutdown` has run).
    fn stats(&self) -> SourceStats;

    /// The source's cumulative ingest-health report, same vocabulary
    /// as offline capture ingest.
    fn ingest_report(&self) -> IngestReport;

    /// Blocks up to `ms` milliseconds for the source to become ready
    /// again after an [`PumpOutcome::Idle`] pump. The default sleeps;
    /// descriptor-backed sources override this with a real readiness
    /// wait (`poll(2)`) so idle loops wake on arrival, not on a timer.
    fn wait(&mut self, ms: u32) {
        std::thread::sleep(std::time::Duration::from_millis(u64::from(ms)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned source, exercising the trait contract the run loop
    /// relies on (and proving the trait is object-safe).
    struct Canned {
        batches: Vec<Vec<HttpTransaction>>,
        emitted: u64,
        shut: bool,
    }

    impl TrafficSource for Canned {
        fn pump(&mut self, out: &mut Vec<HttpTransaction>) -> crate::Result<PumpOutcome> {
            match self.batches.pop() {
                Some(batch) => {
                    self.emitted += batch.len() as u64;
                    out.extend(batch);
                    Ok(PumpOutcome::Progress)
                }
                None => Ok(PumpOutcome::Exhausted),
            }
        }

        fn shutdown(&mut self, _out: &mut Vec<HttpTransaction>) {
            self.shut = true;
        }

        fn stats(&self) -> SourceStats {
            SourceStats { transactions: self.emitted, ..SourceStats::default() }
        }

        fn ingest_report(&self) -> IngestReport {
            IngestReport::new()
        }
    }

    #[test]
    fn pump_loop_drains_then_shuts_down() {
        let mut source: Box<dyn TrafficSource> =
            Box::new(Canned { batches: vec![Vec::new(), Vec::new()], emitted: 0, shut: false });
        let mut out = Vec::new();
        let mut pumps = 0;
        while source.pump(&mut out).unwrap() != PumpOutcome::Exhausted {
            pumps += 1;
            assert!(pumps < 100);
        }
        source.shutdown(&mut out);
        assert_eq!(pumps, 2);
        assert_eq!(source.stats().transactions, 0);
    }
}
