//! Incremental HTTP/1.x message parsing.
//!
//! The parsers here operate on reassembled byte streams and follow the
//! "return `None` until enough bytes have arrived" convention so they can be
//! driven both offline (whole capture in memory) and on-the-wire
//! (segment-by-segment).

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Maximum accepted head (start line + headers) size. Real servers use
/// similar limits; anything larger is treated as a syntax error.
pub const MAX_HEAD_LEN: usize = 64 * 1024;

/// An HTTP request method.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD`
    Head,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `OPTIONS`
    Options,
    /// Any other token (e.g. `PATCH`, `CONNECT`).
    Other(String),
}

impl Method {
    /// Parses a method token.
    pub fn from_token(tok: &str) -> Method {
        match tok {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "HEAD" => Method::Head,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            other => Method::Other(other.to_string()),
        }
    }

    /// The canonical token for this method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Other(s) => s,
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The hot header names interned to dense ids at parse time. Every name
/// the extractor, decode gate, redirect miner, or feature layer looks up
/// on the per-transaction path is here; the long tail falls back to the
/// linear case-insensitive scan.
const HOT_HEADERS: [&str; 12] = [
    "Host",
    "Content-Length",
    "Content-Type",
    "Content-Encoding",
    "Transfer-Encoding",
    "Location",
    "Referer",
    "User-Agent",
    "Cookie",
    "Connection",
    "DNT",
    "X-Flash-Version",
];

/// Sentinel id for names outside [`HOT_HEADERS`].
const COLD_HEADER: u8 = u8::MAX;

/// Interns a header name: `(length, lowercased first byte)` is a perfect
/// hash over [`HOT_HEADERS`] (every pair is unique), so the lookup is one
/// match plus at most one case-insensitive confirmation.
fn hot_id(name: &str) -> u8 {
    let bytes = name.as_bytes();
    let Some(&first) = bytes.first() else { return COLD_HEADER };
    let id: u8 = match (bytes.len(), first | 0x20) {
        (4, b'h') => 0,   // Host
        (14, b'c') => 1,  // Content-Length
        (12, b'c') => 2,  // Content-Type
        (16, b'c') => 3,  // Content-Encoding
        (17, b't') => 4,  // Transfer-Encoding
        (8, b'l') => 5,   // Location
        (7, b'r') => 6,   // Referer
        (10, b'u') => 7,  // User-Agent
        (6, b'c') => 8,   // Cookie
        (10, b'c') => 9,  // Connection
        (3, b'd') => 10,  // DNT
        (15, b'x') => 11, // X-Flash-Version
        _ => return COLD_HEADER,
    };
    if name.eq_ignore_ascii_case(HOT_HEADERS[id as usize]) {
        id
    } else {
        COLD_HEADER
    }
}

/// An ordered, case-insensitive multimap of HTTP headers.
///
/// Hot header names (see `HOT_HEADERS`) are interned to dense ids when
/// a header is inserted, so [`HeaderMap::get`]/[`HeaderMap::set`] on
/// those names compare one byte per entry instead of running
/// `eq_ignore_ascii_case` over every stored name. Lookups of other names
/// fall back to the scan, restricted to the non-interned entries (a
/// case-insensitive match implies an identical id).
#[derive(Debug, Clone, Default)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
    /// Parallel to `entries`: `hot_id` of each entry's name.
    ids: Vec<u8>,
}

impl HeaderMap {
    /// Creates an empty header map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Appends a header, preserving insertion order.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        self.ids.push(hot_id(&name));
        self.entries.push((name, value.into()));
    }

    /// First value for `name`, compared case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        let id = hot_id(name);
        if id != COLD_HEADER {
            let i = self.ids.iter().position(|&e| e == id)?;
            Some(self.entries[i].1.as_str())
        } else {
            self.entries
                .iter()
                .zip(&self.ids)
                .find(|((n, _), &e)| e == COLD_HEADER && n.eq_ignore_ascii_case(name))
                .map(|((_, v), _)| v.as_str())
        }
    }

    /// Whether a header with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Replaces the first header named `name` (case-insensitively) in
    /// place, or appends it when absent. Later duplicates are left
    /// untouched — rewriting tools want to update the value a reader
    /// would observe via [`HeaderMap::get`] without reshuffling order.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        let id = hot_id(&name);
        let pos = if id != COLD_HEADER {
            self.ids.iter().position(|&e| e == id)
        } else {
            self.entries
                .iter()
                .zip(&self.ids)
                .position(|((n, _), &e)| e == COLD_HEADER && n.eq_ignore_ascii_case(&name))
        };
        match pos {
            Some(i) => self.entries[i].1 = value,
            None => {
                self.ids.push(id);
                self.entries.push((name, value));
            }
        }
    }

    /// Removes every header named `name` (case-insensitively), returning
    /// whether anything was removed. Order of the surviving entries is
    /// preserved.
    pub fn remove(&mut self, name: &str) -> bool {
        let id = hot_id(name);
        let before = self.entries.len();
        let keep = if id != COLD_HEADER {
            self.ids.iter().map(|&e| e != id).collect::<Vec<bool>>()
        } else {
            self.entries
                .iter()
                .zip(&self.ids)
                .map(|((n, _), &e)| e != COLD_HEADER || !n.eq_ignore_ascii_case(name))
                .collect()
        };
        let mut it = keep.iter();
        self.entries.retain(|_| *it.next().expect("parallel"));
        let mut it = keep.iter();
        self.ids.retain(|_| *it.next().expect("parallel"));
        self.entries.len() != before
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

impl PartialEq for HeaderMap {
    fn eq(&self, other: &Self) -> bool {
        // `ids` is a pure function of the names, so entries suffice.
        self.entries == other.entries
    }
}

impl Eq for HeaderMap {}

impl FromIterator<(String, String)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let entries: Vec<(String, String)> = iter.into_iter().collect();
        let ids = entries.iter().map(|(n, _)| hot_id(n)).collect();
        HeaderMap { entries, ids }
    }
}

impl Extend<(String, String)> for HeaderMap {
    fn extend<T: IntoIterator<Item = (String, String)>>(&mut self, iter: T) {
        for (name, value) in iter {
            self.append(name, value);
        }
    }
}

// Manual serde impls: the wire format must stay exactly what the derive
// produced before `ids` existed (`{"entries": [...]}`) — the interning
// table is rebuilt from the names on deserialize, never serialized.
impl Serialize for HeaderMap {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let entries =
            serde::to_value(&self.entries).map_err(<S::Error as serde::ser::Error>::custom)?;
        serializer
            .serialize_value(serde::Value::Object(vec![("entries".to_string(), entries)]))
    }
}

impl<'de> Deserialize<'de> for HeaderMap {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let value = serde::Deserializer::deserialize_value(deserializer)?;
        match value {
            serde::Value::Object(mut fields) => {
                let entries: Vec<(String, String)> =
                    match serde::__private::take_field(&mut fields, "entries") {
                        Some(v) => {
                            serde::from_value(v).map_err(<D::Error as serde::de::Error>::custom)?
                        }
                        None => return Err(<D::Error as serde::de::Error>::missing_field("entries")),
                    };
                Ok(entries.into_iter().collect())
            }
            other => Err(<D::Error as serde::de::Error>::custom(format_args!(
                "expected object for struct HeaderMap, found {other:?}"
            ))),
        }
    }
}

/// A parsed request head (start line + headers, no body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestHead {
    /// Request method.
    pub method: Method,
    /// Request target (URI as sent).
    pub uri: String,
    /// Protocol version, e.g. `"HTTP/1.1"`.
    pub version: String,
    /// Request headers.
    pub headers: HeaderMap,
}

/// A parsed response head (status line + headers, no body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseHead {
    /// Protocol version, e.g. `"HTTP/1.1"`.
    pub version: String,
    /// Numeric status code.
    pub status: u16,
    /// Reason phrase (may be empty).
    pub reason: String,
    /// Response headers.
    pub headers: HeaderMap,
}

/// How a message body is framed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body (e.g. GET request, 204/304 response, HEAD response).
    None,
    /// Exactly this many bytes follow.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
    /// Body runs until the connection closes.
    UntilClose,
}

/// Finds the end of a message head: the index one past the blank line.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    crate::scan::find_head_end(buf)
}

fn parse_headers(lines: &str) -> Result<HeaderMap> {
    let mut headers = HeaderMap::new();
    for line in lines.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Error::HttpSyntax(format!("header line without colon: {line:?}")))?;
        headers.append(name.trim(), value.trim());
    }
    Ok(headers)
}

/// Attempts to parse a request head from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or `Ok(Some((head,
/// consumed)))` on success.
///
/// # Errors
///
/// Returns [`Error::HttpSyntax`] on malformed start lines or headers, or
/// when the head exceeds [`MAX_HEAD_LEN`].
pub fn parse_request_head(buf: &[u8]) -> Result<Option<(RequestHead, usize)>> {
    let end = match find_head_end(buf) {
        Some(e) => e,
        None if buf.len() > MAX_HEAD_LEN => {
            return Err(Error::HttpSyntax("request head exceeds maximum length".into()))
        }
        None => return Ok(None),
    };
    let head = std::str::from_utf8(&buf[..end - 4])
        .map_err(|_| Error::HttpSyntax("request head is not utf-8".into()))?;
    let (start_line, rest) = head.split_once("\r\n").unwrap_or((head, ""));
    let mut parts = start_line.splitn(3, ' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| Error::HttpSyntax("empty request line".into()))?;
    let uri = parts
        .next()
        .ok_or_else(|| Error::HttpSyntax(format!("request line missing uri: {start_line:?}")))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/") {
        return Err(Error::HttpSyntax(format!("bad http version: {version:?}")));
    }
    Ok(Some((
        RequestHead {
            method: Method::from_token(method),
            uri: uri.to_string(),
            version: version.to_string(),
            headers: parse_headers(rest)?,
        },
        end,
    )))
}

/// Attempts to parse a response head from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// Returns [`Error::HttpSyntax`] on malformed status lines or headers, or
/// when the head exceeds [`MAX_HEAD_LEN`].
pub fn parse_response_head(buf: &[u8]) -> Result<Option<(ResponseHead, usize)>> {
    let end = match find_head_end(buf) {
        Some(e) => e,
        None if buf.len() > MAX_HEAD_LEN => {
            return Err(Error::HttpSyntax("response head exceeds maximum length".into()))
        }
        None => return Ok(None),
    };
    let head = std::str::from_utf8(&buf[..end - 4])
        .map_err(|_| Error::HttpSyntax("response head is not utf-8".into()))?;
    let (status_line, rest) = head.split_once("\r\n").unwrap_or((head, ""));
    let mut parts = status_line.splitn(3, ' ');
    let version = parts
        .next()
        .filter(|v| v.starts_with("HTTP/"))
        .ok_or_else(|| Error::HttpSyntax(format!("bad status line: {status_line:?}")))?;
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::HttpSyntax(format!("bad status code in: {status_line:?}")))?;
    let reason = parts.next().unwrap_or("").to_string();
    Ok(Some((
        ResponseHead {
            version: version.to_string(),
            status,
            reason,
            headers: parse_headers(rest)?,
        },
        end,
    )))
}

/// Allocation-free ASCII case-insensitive substring test, equivalent to
/// `haystack.to_ascii_lowercase().contains(needle)` for an already-lowercase
/// non-empty needle. Runs once per parsed message head, so the lowercase
/// copy it replaces was a per-response allocation on the decode gate.
fn contains_ignore_ascii_case(haystack: &str, needle: &str) -> bool {
    debug_assert!(!needle.is_empty());
    haystack.as_bytes().windows(needle.len()).any(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
}

/// Determines how the body after a request head is framed.
pub fn request_body_framing(head: &RequestHead) -> BodyFraming {
    if head
        .headers
        .get("Transfer-Encoding")
        .is_some_and(|v| contains_ignore_ascii_case(v, "chunked"))
    {
        return BodyFraming::Chunked;
    }
    match head.headers.get("Content-Length").and_then(|v| v.parse::<usize>().ok()) {
        Some(0) | None => BodyFraming::None,
        Some(n) => BodyFraming::Length(n),
    }
}

/// Determines how the body after a response head is framed, given the method
/// of the request it answers.
pub fn response_body_framing(head: &ResponseHead, request_method: &Method) -> BodyFraming {
    if *request_method == Method::Head
        || head.status / 100 == 1
        || head.status == 204
        || head.status == 304
    {
        return BodyFraming::None;
    }
    if head
        .headers
        .get("Transfer-Encoding")
        .is_some_and(|v| contains_ignore_ascii_case(v, "chunked"))
    {
        return BodyFraming::Chunked;
    }
    match head.headers.get("Content-Length").and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => BodyFraming::Length(n),
        None => BodyFraming::UntilClose,
    }
}

/// Attempts to decode a chunked body from the front of `buf`.
///
/// Returns `Ok(None)` when the terminating zero-chunk has not arrived yet,
/// or `Ok(Some((body, consumed)))` once complete. Trailer headers are
/// consumed but discarded.
///
/// # Errors
///
/// Returns [`Error::HttpSyntax`] when a chunk-size line is malformed.
pub fn decode_chunked(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let line_end = match crate::scan::find_crlf(&buf[pos..]) {
            Some(e) => pos + e,
            None => return Ok(None),
        };
        let size_str = std::str::from_utf8(&buf[pos..line_end])
            .map_err(|_| Error::HttpSyntax("chunk size line is not utf-8".into()))?;
        let size_str = size_str.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| Error::HttpSyntax(format!("bad chunk size: {size_str:?}")))?;
        pos = line_end + 2;
        if size == 0 {
            // Trailers: consume until blank line.
            loop {
                let t_end = match crate::scan::find_crlf(&buf[pos..]) {
                    Some(e) => pos + e,
                    None => return Ok(None),
                };
                let empty = t_end == pos;
                pos = t_end + 2;
                if empty {
                    return Ok(Some((body, pos)));
                }
            }
        }
        if buf.len() < pos + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return Err(Error::HttpSyntax("chunk data not terminated by crlf".into()));
        }
        pos += size + 2;
    }
}

/// Encodes `body` using chunked transfer-encoding with a single chunk.
pub fn encode_chunked(body: &[u8]) -> Vec<u8> {
    if body.is_empty() {
        return b"0\r\n\r\n".to_vec();
    }
    let mut out = format!("{:x}\r\n", body.len()).into_bytes();
    out.extend_from_slice(body);
    out.extend_from_slice(b"\r\n0\r\n\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_map_is_case_insensitive_and_ordered() {
        let mut h = HeaderMap::new();
        h.append("Host", "a.example");
        h.append("X-Test", "1");
        h.append("x-test", "2");
        assert_eq!(h.get("host"), Some("a.example"));
        assert_eq!(h.get("X-TEST"), Some("1")); // first match wins
        assert_eq!(h.len(), 3);
        let names: Vec<_> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["Host", "X-Test", "x-test"]);
    }

    #[test]
    fn header_map_remove_deletes_all_matches() {
        let mut h = HeaderMap::new();
        h.append("Host", "a.example");
        h.append("X-Replay-Ts", "1.5");
        h.append("Cookie", "sid=1");
        h.append("x-replay-ts", "2.5");
        assert!(h.remove("X-REPLAY-TS"), "case-insensitive removal");
        assert!(!h.remove("X-Replay-Ts"), "already gone");
        assert_eq!(h.len(), 2);
        let names: Vec<_> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["Host", "Cookie"], "survivor order preserved");
        // Hot (interned) names go through the id fast path.
        assert!(h.remove("cookie"));
        assert_eq!(h.get("Cookie"), None);
        assert_eq!(h.get("Host"), Some("a.example"));
    }

    #[test]
    fn parses_request_head() {
        let raw = b"GET /index.html?q=1 HTTP/1.1\r\nHost: example.com\r\nReferer: http://bing.com/\r\n\r\nBODY";
        let (head, consumed) = parse_request_head(raw).unwrap().unwrap();
        assert_eq!(head.method, Method::Get);
        assert_eq!(head.uri, "/index.html?q=1");
        assert_eq!(head.version, "HTTP/1.1");
        assert_eq!(head.headers.get("host"), Some("example.com"));
        assert_eq!(consumed, raw.len() - 4);
    }

    #[test]
    fn incomplete_head_returns_none() {
        assert!(parse_request_head(b"GET / HTTP/1.1\r\nHost: x").unwrap().is_none());
        assert!(parse_response_head(b"HTTP/1.1 200 OK\r\n").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_error() {
        assert!(parse_request_head(b"NONSENSE\r\n\r\n").is_err());
        assert!(parse_request_head(b"GET / FTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn parses_response_head() {
        let raw = b"HTTP/1.1 302 Found\r\nLocation: http://evil.example/gate\r\n\r\n";
        let (head, consumed) = parse_response_head(raw).unwrap().unwrap();
        assert_eq!(head.status, 302);
        assert_eq!(head.reason, "Found");
        assert_eq!(head.headers.get("location"), Some("http://evil.example/gate"));
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn response_missing_reason_is_accepted() {
        let (head, _) = parse_response_head(b"HTTP/1.1 200\r\n\r\n").unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.reason, "");
    }

    #[test]
    fn request_framing_rules() {
        let mk = |extra: &str| {
            let raw = format!("POST / HTTP/1.1\r\nHost: x\r\n{extra}\r\n");
            parse_request_head(raw.as_bytes()).unwrap().unwrap().0
        };
        assert_eq!(request_body_framing(&mk("")), BodyFraming::None);
        assert_eq!(request_body_framing(&mk("Content-Length: 10\r\n")), BodyFraming::Length(10));
        assert_eq!(
            request_body_framing(&mk("Transfer-Encoding: chunked\r\n")),
            BodyFraming::Chunked
        );
    }

    #[test]
    fn response_framing_rules() {
        let mk = |status: u16, extra: &str| {
            let raw = format!("HTTP/1.1 {status} X\r\n{extra}\r\n");
            parse_response_head(raw.as_bytes()).unwrap().unwrap().0
        };
        assert_eq!(
            response_body_framing(&mk(200, "Content-Length: 5\r\n"), &Method::Get),
            BodyFraming::Length(5)
        );
        assert_eq!(response_body_framing(&mk(204, ""), &Method::Get), BodyFraming::None);
        assert_eq!(response_body_framing(&mk(304, ""), &Method::Get), BodyFraming::None);
        assert_eq!(
            response_body_framing(&mk(200, "Content-Length: 5\r\n"), &Method::Head),
            BodyFraming::None
        );
        assert_eq!(response_body_framing(&mk(200, ""), &Method::Get), BodyFraming::UntilClose);
        assert_eq!(
            response_body_framing(&mk(200, "Transfer-Encoding: chunked\r\n"), &Method::Get),
            BodyFraming::Chunked
        );
    }

    #[test]
    fn chunked_roundtrip() {
        let body = b"hello chunked world".to_vec();
        let encoded = encode_chunked(&body);
        let (decoded, consumed) = decode_chunked(&encoded).unwrap().unwrap();
        assert_eq!(decoded, body);
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn chunked_multi_chunk() {
        let raw = b"3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n";
        let (decoded, consumed) = decode_chunked(raw).unwrap().unwrap();
        assert_eq!(decoded, b"abcdefg");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn chunked_with_extension_and_trailers() {
        let raw = b"3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n";
        let (decoded, consumed) = decode_chunked(raw).unwrap().unwrap();
        assert_eq!(decoded, b"abc");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn chunked_incomplete_returns_none() {
        assert!(decode_chunked(b"3\r\nab").unwrap().is_none());
        assert!(decode_chunked(b"3\r\nabc\r\n").unwrap().is_none());
        assert!(decode_chunked(b"").unwrap().is_none());
    }

    #[test]
    fn chunked_bad_size_is_error() {
        assert!(decode_chunked(b"zz\r\nabc\r\n").is_err());
    }

    #[test]
    fn empty_body_chunked_roundtrip() {
        let encoded = encode_chunked(b"");
        let (decoded, consumed) = decode_chunked(&encoded).unwrap().unwrap();
        assert!(decoded.is_empty());
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn method_token_roundtrip() {
        for tok in ["GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"] {
            assert_eq!(Method::from_token(tok).as_str(), tok);
        }
    }

    #[test]
    fn hot_header_interning_is_a_perfect_hash() {
        // Every hot name maps to its own id in any case; near-misses with
        // the same (length, first byte) signature stay cold.
        for (i, name) in HOT_HEADERS.iter().enumerate() {
            assert_eq!(hot_id(name), i as u8, "{name}");
            assert_eq!(hot_id(&name.to_ascii_uppercase()), i as u8);
            assert_eq!(hot_id(&name.to_ascii_lowercase()), i as u8);
        }
        for cold in ["Host-", "Hast", "Content-Lengtt", "Xonnection", "X-Request-Id", ""] {
            assert_eq!(hot_id(cold), COLD_HEADER, "{cold}");
        }
        // The (len, first-byte) signatures must be pairwise distinct or
        // the match above would shadow an entry.
        let sigs: Vec<_> =
            HOT_HEADERS.iter().map(|n| (n.len(), n.as_bytes()[0] | 0x20)).collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "{} vs {}", HOT_HEADERS[i], HOT_HEADERS[j]);
            }
        }
    }

    #[test]
    fn interned_lookups_match_scan_semantics() {
        let mut h = HeaderMap::new();
        h.append("content-type", "text/html");
        h.append("X-Custom", "a");
        h.append("Content-Type", "application/pdf");
        h.append("x-custom", "b");
        // Hot name: first entry in insertion order wins, any query case.
        assert_eq!(h.get("Content-Type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        // Cold name: same rule via the fallback scan.
        assert_eq!(h.get("X-CUSTOM"), Some("a"));
        assert_eq!(h.get("Absent"), None);
        // set() replaces the first match in place for both classes.
        h.set("CONTENT-TYPE", "image/gif");
        assert_eq!(h.get("content-type"), Some("image/gif"));
        assert_eq!(h.iter().filter(|(n, _)| n.eq_ignore_ascii_case("content-type")).count(), 2);
        h.set("X-Custom", "c");
        assert_eq!(h.get("x-custom"), Some("c"));
        h.set("New-Name", "v");
        assert_eq!(h.get("new-name"), Some("v"));
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn header_map_serde_format_is_entries_only() {
        // The interning ids must never leak into the wire format: the
        // serialized shape is exactly the pre-interning derive's.
        let mut h = HeaderMap::new();
        h.append("Host", "x.example");
        h.append("X-Cold", "1");
        let v = serde::to_value(&h).unwrap();
        match &v {
            serde::Value::Object(fields) => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, "entries");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let back: HeaderMap = serde::from_value(v).unwrap();
        assert_eq!(back, h);
        // Interning survives the round trip (fast path finds the entry).
        assert_eq!(back.get("HOST"), Some("x.example"));
        assert_eq!(back.get("x-cold"), Some("1"));
    }
}
