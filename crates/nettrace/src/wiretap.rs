//! Live-wire HTTP observation: incremental parse and pairing of one
//! TCP connection, producing the same [`HttpTransaction`]s the offline
//! capture pipeline would.
//!
//! A [`ConnectionTap`] sits beside a connection someone else owns — a
//! forward proxy relaying bytes, or a packet-capture flow reassembler —
//! and is fed each direction's bytes as they arrive. It parses
//! requests and responses incrementally, FIFO-pairs them exactly like
//! [`crate::transaction`]'s offline pairing, and emits transactions
//! through the *same* synthesis routine
//! (`crate::transaction::synthesize_transaction`): Host resolution,
//! the content-coding decode gate, payload classification, and body
//! previews are shared code, so a transaction observed on the wire is
//! byte-identical to the same exchange extracted from a pcap.
//!
//! # Bounded buffering
//!
//! Each direction buffers at most `capacity` bytes (the *tap buffer*).
//! The owner of the connection decides what buffer exhaustion means:
//!
//! * **backpressure** — consult [`ConnectionTap::free_space`] before
//!   reading from the socket and read at most that much, so TCP flow
//!   control slows the peer down instead of losing observation;
//! * **drop-newest** — keep reading and relaying at full speed; when
//!   the tap cannot keep up it overflows.
//!
//! Either way, a single HTTP message too large for the tap (a head or
//! framed body that can never complete within `capacity`) *abandons
//! observation* of the connection: HTTP has no resynchronization point
//! mid-stream, so the tap stops parsing, drops its buffers, and
//! reports [`ConnectionTap::overflowed`] — the owner keeps relaying
//! bytes, only the observation is lost. Size `capacity` above
//! [`crate::http::MAX_HEAD_LEN`] plus the largest body worth observing.
//!
//! # Close semantics
//!
//! While the connection is open the tap only emits *completely framed*
//! messages. [`ConnectionTap::close`] flushes the tail with the same
//! truncating end-of-stream semantics the offline parser applies at
//! the end of a reassembled stream: `Content-Length` bodies truncate
//! to what arrived, unterminated chunked bodies keep the decodable
//! prefix, until-close bodies take the rest, and still-unanswered
//! requests become status-0 transactions. Because truncation can only
//! ever affect the stream tail, incremental emission and offline
//! extraction of the same bytes agree on every transaction.
//!
//! # Replay timestamps
//!
//! With [`TapConfig::honor_replay_ts`] enabled the tap recognizes the
//! loopback-replay headers ([`REPLAY_TS_HEADER`],
//! [`REPLAY_RESP_TS_HEADER`], [`REPLAY_ID_HEADER`]): a replay driver
//! annotates each request with the original capture timestamp, the
//! replay origin annotates each response, and the tap adopts those
//! timestamps and strips the headers — so transactions synthesized
//! from a live replay carry the *episode's* timeline, not the
//! wall-clock of the replay, and compare equal to offline extraction.
//! The flag is off by default and must stay off outside parity
//! harnesses: honoring client-supplied timestamps on a real deployment
//! would let a peer reorder its own conversation history.

use std::collections::VecDeque;

use crate::http::{
    decode_chunked, parse_request_head, parse_response_head, request_body_framing,
    response_body_framing, BodyFraming, Method,
};
use crate::ingest::IngestReport;
use crate::reassembly::Endpoint;
use crate::transaction::{
    count_unpaired, fnv1a, looks_like_request, synthesize_transaction, Body, HttpTransaction,
    ParsedRequest, ParsedResponse,
};

/// Request header carrying the original capture timestamp of a
/// replayed request (`f64` seconds, as printed by Rust).
pub const REPLAY_TS_HEADER: &str = "X-Replay-Ts";
/// Response header carrying the original capture timestamp at which
/// the replayed response finished.
pub const REPLAY_RESP_TS_HEADER: &str = "X-Replay-Resp-Ts";
/// Request header correlating a replayed request with its episode
/// transaction (opaque to the tap; stripped alongside the timestamps).
pub const REPLAY_ID_HEADER: &str = "X-Replay-Id";

/// Default per-direction tap buffer: roomy enough for a maximum-size
/// head plus a substantial body.
pub const DEFAULT_TAP_CAPACITY: usize = 1 << 20;

/// Which direction of the connection bytes belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// Client → server (requests).
    Request,
    /// Server → client (responses).
    Response,
}

/// Configuration for a [`ConnectionTap`].
#[derive(Debug, Clone, Copy)]
pub struct TapConfig {
    /// Per-direction buffer bound in bytes.
    pub capacity: usize,
    /// Adopt and strip `X-Replay-*` timestamp headers (parity
    /// harnesses only — see the module docs for why this is unsafe on
    /// untrusted traffic).
    pub honor_replay_ts: bool,
}

impl Default for TapConfig {
    fn default() -> Self {
        TapConfig { capacity: DEFAULT_TAP_CAPACITY, honor_replay_ts: false }
    }
}

/// One direction's bounded byte buffer with a coarse timeline, the
/// live analogue of a reassembled stream's `(offset, ts)` pairs.
#[derive(Debug, Default)]
struct DirBuf {
    data: Vec<u8>,
    /// `(absolute stream offset, ts)` per burst of appended bytes.
    timeline: Vec<(usize, f64)>,
    /// Absolute stream offset of `data[0]` (bytes consumed so far).
    base: usize,
    /// Total bytes ever offered to this direction.
    total_in: u64,
    /// First few bytes of the stream, kept for protocol triage after
    /// the live buffer has been drained.
    first: Vec<u8>,
    closed: bool,
}

impl DirBuf {
    fn push(&mut self, bytes: &[u8], ts: f64) {
        if bytes.is_empty() {
            return;
        }
        if self.first.len() < 8 {
            let want = 8 - self.first.len();
            self.first.extend_from_slice(&bytes[..bytes.len().min(want)]);
        }
        self.timeline.push((self.base + self.data.len(), ts));
        self.data.extend_from_slice(bytes);
    }

    /// Timestamp of the byte at relative offset `rel`, mirroring
    /// [`crate::reassembly::StreamView::timestamp_at`]: the last burst
    /// starting at or before it, else the first burst, else 0.
    fn ts_at(&self, rel: usize) -> f64 {
        let abs = self.base + rel;
        match self.timeline.binary_search_by(|(o, _)| o.cmp(&abs)) {
            Ok(i) => self.timeline[i].1,
            Err(0) => self.timeline.first().map(|&(_, t)| t).unwrap_or(0.0),
            Err(i) => self.timeline[i - 1].1,
        }
    }

    /// Drops `n` parsed bytes from the front, keeping the last
    /// timeline burst at or before the new base as the floor.
    fn consume(&mut self, n: usize) {
        self.data.drain(..n);
        self.base += n;
        if let Some(i) = self.timeline.iter().rposition(|&(o, _)| o <= self.base) {
            self.timeline.drain(..i);
        }
    }
}

/// Incremental HTTP observer for one TCP connection (see the module
/// docs for semantics).
///
/// Emitted transactions have `seq == 0`; the caller numbers them in
/// emission order (e.g. [`crate::transaction::assign_seq`] or a stream
/// engine's feed order).
#[derive(Debug)]
pub struct ConnectionTap {
    client: Endpoint,
    server: Endpoint,
    config: TapConfig,
    req: DirBuf,
    resp: DirBuf,
    /// Requests parsed but not yet answered, FIFO.
    pending: VecDeque<ParsedRequest>,
    /// Messages successfully parsed per direction (salvage accounting).
    req_msgs: u64,
    resp_msgs: u64,
    emitted: u64,
    /// A parse error killed this direction (no mid-stream resync).
    req_poisoned: bool,
    resp_poisoned: bool,
    /// The client's first bytes are not an HTTP request: observation
    /// disabled, accounted at close like an offline non-HTTP stream.
    non_http: bool,
    overflowed: bool,
    /// Observation dropped (overflow); bytes are swallowed unseen.
    abandoned: bool,
    closed: bool,
}

impl ConnectionTap {
    /// Creates a tap for one connection. `client`/`server` become the
    /// transaction endpoints — for proxied traffic, pass the *true*
    /// client (e.g. recovered from a PROXY-protocol header), since the
    /// client address drives shard partitioning downstream.
    pub fn new(client: Endpoint, server: Endpoint, config: TapConfig) -> Self {
        ConnectionTap {
            client,
            server,
            config,
            req: DirBuf::default(),
            resp: DirBuf::default(),
            pending: VecDeque::new(),
            req_msgs: 0,
            resp_msgs: 0,
            emitted: 0,
            req_poisoned: false,
            resp_poisoned: false,
            non_http: false,
            overflowed: false,
            abandoned: false,
            closed: false,
        }
    }

    /// Bytes this direction can accept before the buffer is full.
    /// Backpressuring owners read at most this much from the socket;
    /// once observation is abandoned the tap is a sink and reports
    /// unlimited space.
    pub fn free_space(&self, dir: TapDir) -> usize {
        if self.abandoned || self.non_http || self.closed {
            return usize::MAX;
        }
        let d = match dir {
            TapDir::Request => &self.req,
            TapDir::Response => &self.resp,
        };
        self.config.capacity.saturating_sub(d.data.len())
    }

    /// Whether observation was dropped because a single message could
    /// not complete within the tap buffer.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Feeds one burst of `dir`-direction bytes observed at time `ts`.
    /// Completed transactions are appended to `out` (digested, seq 0)
    /// and decode/salvage outcomes are counted in `report`. Always
    /// swallows the full burst: bytes beyond what can be buffered
    /// *and* parsed mean an oversized message, which abandons
    /// observation (see module docs).
    pub fn offer(
        &mut self,
        dir: TapDir,
        bytes: &[u8],
        ts: f64,
        report: &mut IngestReport,
        out: &mut Vec<HttpTransaction>,
    ) {
        if self.abandoned || self.closed || bytes.is_empty() {
            return;
        }
        if self.non_http {
            // Observation is off but stream accounting still applies:
            // the direction existed, close() will triage it.
            let d = match dir {
                TapDir::Request => &mut self.req,
                TapDir::Response => &mut self.resp,
            };
            if d.first.len() < 8 {
                let want = 8 - d.first.len();
                d.first.extend_from_slice(&bytes[..bytes.len().min(want)]);
            }
            d.total_in += bytes.len() as u64;
            return;
        }
        let cap = self.config.capacity;
        let mut off = 0;
        while off < bytes.len() {
            let d = match dir {
                TapDir::Request => &mut self.req,
                TapDir::Response => &mut self.resp,
            };
            let free = cap.saturating_sub(d.data.len());
            if free == 0 {
                // The parser is stuck mid-message on a full buffer:
                // this message can never complete within the tap.
                self.overflow();
                return;
            }
            let take = free.min(bytes.len() - off);
            d.total_in += take as u64;
            d.push(&bytes[off..off + take], ts);
            off += take;
            self.pump(report, out);
            if self.abandoned || self.non_http {
                return;
            }
        }
    }

    /// Marks the connection closed and flushes the tail: truncated
    /// bodies resolve with end-of-stream semantics and unanswered
    /// requests emit as status-0 transactions. Also settles per-stream
    /// accounting (`streams_total`, orphan/non-HTTP classification).
    /// Idempotent; the tap emits nothing after.
    pub fn close(&mut self, report: &mut IngestReport, out: &mut Vec<HttpTransaction>) {
        if self.closed {
            return;
        }
        self.closed = true;
        for d in [&self.req, &self.resp] {
            if d.total_in > 0 {
                report.streams_total += 1;
            }
        }
        if self.abandoned {
            return;
        }
        if self.non_http {
            // Mirror the offline pairer: streams on a connection with
            // no request direction are triaged by their first bytes.
            for d in [&self.req, &self.resp] {
                if d.total_in > 0 {
                    count_unpaired(report, &d.first);
                }
            }
            return;
        }
        self.req.closed = true;
        self.resp.closed = true;
        self.pump(report, out);
        while let Some(req) = self.pending.pop_front() {
            self.emit(req, None, report, out);
        }
        if self.req.total_in == 0 && self.resp.total_in > 0 && !self.resp_poisoned {
            // Response bytes with no request direction at all: the
            // offline pairer never parses these (orphan stream).
            count_unpaired(report, &self.resp.first);
        }
    }

    fn overflow(&mut self) {
        self.overflowed = true;
        self.abandoned = true;
        self.req.data = Vec::new();
        self.req.timeline = Vec::new();
        self.resp.data = Vec::new();
        self.resp.timeline = Vec::new();
        self.pending.clear();
    }

    fn pump(&mut self, report: &mut IngestReport, out: &mut Vec<HttpTransaction>) {
        self.pump_requests(report);
        if self.non_http {
            return;
        }
        self.pump_responses(report, out);
    }

    /// Parses as many completely framed requests as the buffer holds.
    fn pump_requests(&mut self, report: &mut IngestReport) {
        // Protocol triage once the prefix is decisive (or the stream
        // closed short): a client that doesn't open with an HTTP
        // method is not worth parsing at all.
        if self.req_msgs == 0 && !self.req.first.is_empty() {
            let decisive = self.req.first.len() >= 5 || self.req.closed;
            if decisive && !looks_like_request(&self.req.first) {
                self.non_http = true;
                self.req.data = Vec::new();
                self.resp.data = Vec::new();
                return;
            }
        }
        while !self.req_poisoned && !self.req.data.is_empty() {
            let eof = self.req.closed;
            let (head, consumed) = match parse_request_head(&self.req.data) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => break, // incomplete head; close() ignores the tail
                Err(_) => {
                    self.poison(TapDir::Request, false, report);
                    break;
                }
            };
            let avail = self.req.data.len() - consumed;
            let body_len = match request_body_framing(&head) {
                BodyFraming::None => 0,
                BodyFraming::Length(n) if n <= avail => n,
                BodyFraming::Length(_) if eof => avail,
                BodyFraming::Length(_) => break,
                BodyFraming::Chunked => match decode_chunked(&self.req.data[consumed..]) {
                    Ok(Some((_, c))) => c,
                    Ok(None) if eof => avail,
                    Ok(None) => break,
                    Err(_) => {
                        self.poison(TapDir::Request, true, report);
                        break;
                    }
                },
                BodyFraming::UntilClose if eof => avail,
                BodyFraming::UntilClose => break,
            };
            let mut req = ParsedRequest { head, ts: self.req.ts_at(0) };
            if self.config.honor_replay_ts {
                if let Some(ts) = req.head.headers.get(REPLAY_TS_HEADER).and_then(|v| v.parse().ok())
                {
                    req.ts = ts;
                }
                req.head.headers.remove(REPLAY_TS_HEADER);
                req.head.headers.remove(REPLAY_ID_HEADER);
            }
            self.req.consume(consumed + body_len);
            self.req_msgs += 1;
            self.pending.push_back(req);
        }
    }

    /// Parses completely framed responses and pairs each with the
    /// oldest unanswered request.
    fn pump_responses(&mut self, report: &mut IngestReport, out: &mut Vec<HttpTransaction>) {
        while !self.resp_poisoned && !self.resp.data.is_empty() {
            let eof = self.resp.closed;
            let (head, consumed) = match parse_response_head(&self.resp.data) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => break,
                Err(_) => {
                    self.poison(TapDir::Response, false, report);
                    break;
                }
            };
            // FIFO pairing: the framing method comes from the oldest
            // unanswered request, like the offline pairer's index
            // alignment. A response with no request (causally
            // impossible on a real connection) falls back to GET and
            // is dropped after framing, matching the offline pairer
            // discarding surplus responses.
            let method = self.pending.front().map(|r| r.head.method.clone()).unwrap_or(Method::Get);
            let avail = &self.resp.data[consumed..];
            let (body, body_consumed) = match response_body_framing(&head, &method) {
                BodyFraming::None => (Vec::new(), 0),
                BodyFraming::Length(n) if n <= avail.len() => (avail[..n].to_vec(), n),
                BodyFraming::Length(_) if eof => (avail.to_vec(), avail.len()),
                BodyFraming::Length(_) => break,
                BodyFraming::Chunked => match decode_chunked(avail) {
                    Ok(Some((body, c))) => (body, c),
                    Ok(None) if eof => (avail.to_vec(), avail.len()),
                    Ok(None) => break,
                    Err(_) => {
                        self.poison(TapDir::Response, true, report);
                        break;
                    }
                },
                BodyFraming::UntilClose if eof => (avail.to_vec(), avail.len()),
                BodyFraming::UntilClose => break,
            };
            let end = consumed + body_consumed;
            let mut resp = ParsedResponse {
                head,
                body: Body::Owned(body),
                end_ts: self.resp.ts_at(end.saturating_sub(1)),
            };
            if self.config.honor_replay_ts {
                if let Some(ts) =
                    resp.head.headers.get(REPLAY_RESP_TS_HEADER).and_then(|v| v.parse().ok())
                {
                    resp.end_ts = ts;
                }
                resp.head.headers.remove(REPLAY_RESP_TS_HEADER);
            }
            self.resp.consume(end);
            self.resp_msgs += 1;
            if let Some(req) = self.pending.pop_front() {
                self.emit(req, Some(resp), report, out);
            }
        }
    }

    fn emit(
        &mut self,
        req: ParsedRequest,
        resp: Option<ParsedResponse<'static>>,
        report: &mut IngestReport,
        out: &mut Vec<HttpTransaction>,
    ) {
        let (mut tx, body) =
            synthesize_transaction(self.client, self.server, req, resp, Some(report));
        tx.payload_digest = fnv1a(body.as_slice());
        report.transactions_recovered += 1;
        self.emitted += 1;
        out.push(tx);
    }

    /// A parse error ends observation of one direction — salvage
    /// accounting mirrors the offline [`crate::transaction`] pairer:
    /// directions that yielded messages count as salvaged, barren ones
    /// as discarded, chunked-framing failures tallied separately.
    fn poison(&mut self, dir: TapDir, chunked: bool, report: &mut IngestReport) {
        if chunked {
            report.chunked_failures += 1;
        }
        let (flag, msgs, buf) = match dir {
            TapDir::Request => (&mut self.req_poisoned, self.req_msgs, &mut self.req),
            TapDir::Response => (&mut self.resp_poisoned, self.resp_msgs, &mut self.resp),
        };
        *flag = true;
        buf.data = Vec::new();
        buf.timeline = Vec::new();
        if msgs == 0 {
            report.streams_discarded += 1;
        } else {
            report.streams_salvaged += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HeaderMap;
    use crate::payload::PayloadClass;
    use crate::reassembly::{FlowKey, Stream};
    use crate::transaction::assign_seq;
    use std::net::Ipv4Addr;

    fn client() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 50000)
    }

    fn server() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(203, 0, 113, 9), 80)
    }

    fn offline_pair(req: &[u8], resp: Option<&[u8]>) -> Vec<HttpTransaction> {
        let key = FlowKey::new(client(), server());
        let req_stream =
            Stream { key, data: req.to_vec(), timeline: vec![(0, 1.0)], closed: true };
        let resp_stream = resp.map(|r| Stream {
            key: key.reversed(),
            data: r.to_vec(),
            timeline: vec![(0, 2.0)],
            closed: true,
        });
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        crate::transaction::pair_connection_lenient(
            req_stream.as_view(),
            resp_stream.as_ref().map(Stream::as_view),
            &mut report,
            &mut out,
            None,
        );
        assign_seq(&mut out);
        out
    }

    /// Feeds bytes through a tap in `chunk`-sized bursts.
    fn tap_pair(req: &[u8], resp: Option<&[u8]>, chunk: usize) -> Vec<HttpTransaction> {
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        // Interleave directions to exercise incremental pairing.
        let mut r = 0;
        let mut s = 0;
        let resp = resp.unwrap_or(&[]);
        while r < req.len() || s < resp.len() {
            if r < req.len() {
                let end = (r + chunk).min(req.len());
                tap.offer(TapDir::Request, &req[r..end], 1.0, &mut report, &mut out);
                r = end;
            }
            if s < resp.len() {
                let end = (s + chunk).min(resp.len());
                tap.offer(TapDir::Response, &resp[s..end], 2.0, &mut report, &mut out);
                s = end;
            }
        }
        tap.close(&mut report, &mut out);
        assign_seq(&mut out);
        out
    }

    /// The parity-by-construction contract: any chunking of the same
    /// bytes produces transactions identical to offline pairing.
    #[test]
    fn incremental_tap_matches_offline_pairing() {
        let req: &[u8] =
            b"GET /a.html HTTP/1.1\r\nHost: h\r\n\r\nGET /mz.exe HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello\
                  HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nMZxx";
        let offline = offline_pair(req, Some(resp));
        assert_eq!(offline.len(), 2);
        assert_eq!(offline[1].payload_class, PayloadClass::Exe);
        for chunk in [1, 3, 7, 1024] {
            let live = tap_pair(req, Some(resp), chunk);
            assert_eq!(live, offline, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunked_and_until_close_bodies_match_offline() {
        let req: &[u8] = b"GET /c HTTP/1.1\r\nHost: h\r\n\r\nGET /u HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp: &[u8] = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                  4\r\nMZxx\r\n3\r\nyyy\r\n0\r\n\r\n\
                  HTTP/1.1 200 OK\r\n\r\nrest-until-close";
        for chunk in [1, 5, 4096] {
            assert_eq!(tap_pair(req, Some(resp), chunk), offline_pair(req, Some(resp)));
        }
    }

    #[test]
    fn close_truncates_like_offline_stream_end() {
        // Content-Length promises 100 bytes, the wire delivers 6, the
        // connection closes: offline truncates, so must the tap.
        let req: &[u8] = b"GET /t HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartia";
        let live = tap_pair(req, Some(resp), 4);
        assert_eq!(live, offline_pair(req, Some(resp)));
        assert_eq!(live[0].payload_size, 6);
    }

    #[test]
    fn unanswered_request_becomes_status_zero_at_close() {
        let req: &[u8] = b"POST /exfil HTTP/1.1\r\nHost: cc.evil\r\nContent-Length: 4\r\n\r\ndata";
        let live = tap_pair(req, None, 9);
        assert_eq!(live, offline_pair(req, None));
        assert_eq!(live[0].status, 0);
        assert_eq!(live[0].resp_ts, live[0].ts);
    }

    #[test]
    fn gzip_decode_gate_is_shared_with_offline_path() {
        let html = b"<html>ok</html>";
        let gz = crate::flate::gzip_compress(html);
        let req: &[u8] = b"GET /z HTTP/1.1\r\nHost: h\r\n\r\n";
        let mut resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: gzip\r\nContent-Length: {}\r\n\r\n",
            gz.len()
        )
        .into_bytes();
        resp.extend_from_slice(&gz);
        let live = tap_pair(req, Some(&resp), 3);
        assert_eq!(live, offline_pair(req, Some(&resp)));
        assert_eq!(live[0].payload_size, html.len(), "decoded size");
        assert_eq!(live[0].payload_digest, fnv1a(html), "decoded digest");
    }

    #[test]
    fn replay_headers_override_timestamps_and_are_stripped() {
        let req: &[u8] = b"GET /r HTTP/1.1\r\nHost: h\r\nX-Replay-Ts: 1234.5\r\nX-Replay-Id: ep1:7\r\n\r\n";
        let resp: &[u8] =
            b"HTTP/1.1 200 OK\r\nX-Replay-Resp-Ts: 1234.75\r\nContent-Length: 2\r\n\r\nok";
        let config = TapConfig { honor_replay_ts: true, ..TapConfig::default() };
        let mut tap = ConnectionTap::new(client(), server(), config);
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        tap.offer(TapDir::Request, req, 99.0, &mut report, &mut out);
        tap.offer(TapDir::Response, resp, 99.5, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, 1234.5, "wall clock replaced by episode ts");
        assert_eq!(out[0].resp_ts, 1234.75);
        assert!(out[0].req_headers.get(REPLAY_TS_HEADER).is_none(), "stripped");
        assert!(out[0].req_headers.get(REPLAY_ID_HEADER).is_none(), "stripped");
        assert!(out[0].resp_headers.get(REPLAY_RESP_TS_HEADER).is_none(), "stripped");
        assert_eq!(out[0].req_headers.len(), 1, "only Host survives");
    }

    #[test]
    fn replay_headers_pass_through_untouched_by_default() {
        let req: &[u8] = b"GET /r HTTP/1.1\r\nHost: h\r\nX-Replay-Ts: 1234.5\r\n\r\n";
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        tap.offer(TapDir::Request, req, 99.0, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert_eq!(out[0].ts, 99.0, "client-supplied ts not honored");
        assert_eq!(out[0].req_headers.get(REPLAY_TS_HEADER), Some("1234.5"));
    }

    #[test]
    fn oversized_message_abandons_observation() {
        let config = TapConfig { capacity: 128, ..TapConfig::default() };
        let mut tap = ConnectionTap::new(client(), server(), config);
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        let req: &[u8] = b"GET /ok HTTP/1.1\r\nHost: h\r\n\r\n";
        tap.offer(TapDir::Request, req, 1.0, &mut report, &mut out);
        // A 10 KiB response body can never complete in a 128-byte tap.
        let head: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 10240\r\n\r\n";
        tap.offer(TapDir::Response, head, 2.0, &mut report, &mut out);
        tap.offer(TapDir::Response, &[0x41; 10240], 2.1, &mut report, &mut out);
        assert!(tap.overflowed());
        assert_eq!(tap.free_space(TapDir::Response), usize::MAX, "tap is now a sink");
        tap.close(&mut report, &mut out);
        assert!(out.is_empty(), "observation dropped, nothing emitted");
        assert_eq!(report.streams_total, 2, "both directions still counted");
    }

    #[test]
    fn backpressure_contract_never_overflows() {
        // An owner that respects free_space() can push a body far
        // larger than... the *burst*, as long as each message fits.
        let config = TapConfig { capacity: 256, ..TapConfig::default() };
        let mut tap = ConnectionTap::new(client(), server(), config);
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        for i in 0..50 {
            let req = format!("GET /{i} HTTP/1.1\r\nHost: h\r\n\r\n");
            let resp: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
            for (dir, bytes) in [(TapDir::Request, req.as_bytes()), (TapDir::Response, resp)]
            {
                let mut off = 0;
                while off < bytes.len() {
                    let take = tap.free_space(dir).min(bytes.len() - off);
                    assert!(take > 0, "parser always drains complete messages");
                    tap.offer(dir, &bytes[off..off + take], i as f64, &mut report, &mut out);
                    off += take;
                }
            }
        }
        tap.close(&mut report, &mut out);
        assert!(!tap.overflowed());
        assert_eq!(out.len(), 50);
        assert_eq!(tap.emitted(), 50);
    }

    #[test]
    fn non_http_client_bytes_are_triaged_not_parsed() {
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        // A TLS ClientHello-ish prefix on both directions.
        tap.offer(TapDir::Request, &[0x16, 0x03, 0x01, 0x02, 0x00, 0x01], 1.0, &mut report, &mut out);
        tap.offer(TapDir::Response, &[0x16, 0x03, 0x03, 0x00, 0x7a], 1.1, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert!(out.is_empty());
        assert_eq!(report.streams_total, 2);
        assert_eq!(report.streams_skipped_non_http, 2);
    }

    #[test]
    fn garbage_after_valid_messages_salvages_prefix() {
        let req: &[u8] = b"GET /ok HTTP/1.1\r\nHost: h\r\n\r\nGET bogus\xff\xfe\r\nnope\r\n\r\n";
        let resp: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        tap.offer(TapDir::Request, req, 1.0, &mut report, &mut out);
        tap.offer(TapDir::Response, resp, 2.0, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert_eq!(out.len(), 1, "valid prefix kept");
        assert_eq!(out[0].status, 200);
        assert_eq!(report.streams_salvaged, 1);
    }

    #[test]
    fn orphan_response_stream_counts_as_discarded() {
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        let resp: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        tap.offer(TapDir::Response, resp, 1.0, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert!(out.is_empty(), "a response with no request pairs with nothing");
        assert_eq!(report.streams_discarded, 1);
    }

    #[test]
    fn timeline_tracks_burst_timestamps_across_consumption() {
        let mut tap = ConnectionTap::new(client(), server(), TapConfig::default());
        let mut report = IngestReport::new();
        let mut out = Vec::new();
        let req1: &[u8] = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
        let req2: &[u8] = b"GET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        tap.offer(TapDir::Request, req1, 10.0, &mut report, &mut out);
        tap.offer(TapDir::Request, req2, 20.0, &mut report, &mut out);
        tap.close(&mut report, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, 10.0);
        assert_eq!(out[1].ts, 20.0, "second request keeps its own burst ts");
    }

    #[test]
    fn header_maps_survive_roundtrip() {
        // Sanity: HeaderMap equality is what the parity tests lean on.
        let mut a = HeaderMap::new();
        a.append("Host", "h");
        let mut b = HeaderMap::new();
        b.append("Host", "h");
        assert_eq!(a, b);
    }
}
