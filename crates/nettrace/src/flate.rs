//! DEFLATE (RFC 1951) decompression and gzip (RFC 1952) framing, from
//! scratch.
//!
//! Real-world HTTP responses routinely arrive `Content-Encoding: gzip`,
//! and the redirect evidence DynaMiner mines (meta-refresh tags,
//! obfuscated JavaScript) hides inside those compressed bodies. The
//! transaction extractor uses [`gzip_decompress`] to recover the decoded
//! entity body.
//!
//! The decompressor handles all three block types (stored, fixed Huffman,
//! dynamic Huffman). The compressor side is intentionally minimal — a
//! stored-block encoder and a fixed-Huffman literal encoder — enough for
//! round-trip tests and for re-encoding synthetic bodies on the wire.

use crate::{Error, Result};

fn corrupt(msg: &str) -> Error {
    Error::HttpSyntax(format!("deflate: {msg}"))
}

// ---------------------------------------------------------------------
// Bit reader (LSB-first, as DEFLATE requires).
// ---------------------------------------------------------------------

struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, byte: 0, bit: 0 }
    }

    fn read_bit(&mut self) -> Result<u32> {
        let b = *self.data.get(self.byte).ok_or_else(|| corrupt("unexpected end of input"))?;
        let v = (b >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte += 1;
        }
        Ok(v as u32)
    }

    /// Reads `n` bits, LSB first (for extra-bit fields).
    fn read_bits(&mut self, n: u32) -> Result<u32> {
        let mut v = 0u32;
        for i in 0..n {
            v |= self.read_bit()? << i;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary (stored blocks).
    fn align(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let start = self.byte;
        let end = start.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        if end > self.data.len() {
            return Err(corrupt("stored block truncated"));
        }
        self.byte = end;
        Ok(&self.data[start..end])
    }
}

// ---------------------------------------------------------------------
// Canonical Huffman decoding.
// ---------------------------------------------------------------------

/// A canonical Huffman table built from per-symbol code lengths.
struct Huffman {
    /// counts[len] = number of codes of that length.
    counts: [u16; 16],
    /// Symbols ordered by (length, symbol) — canonical order.
    symbols: Vec<u16>,
}

impl Huffman {
    fn from_lengths(lengths: &[u8]) -> Result<Huffman> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l as usize >= 16 {
                return Err(corrupt("code length out of range"));
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;
        // Over-subscription check.
        let mut left = 1i32;
        for &count in &counts[1..16] {
            left <<= 1;
            left -= count as i32;
            if left < 0 {
                return Err(corrupt("over-subscribed code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= r.read_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(corrupt("invalid huffman code"))
    }
}

// ---------------------------------------------------------------------
// Inflate.
// ---------------------------------------------------------------------

/// Length-code base values and extra bits (codes 257–285).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
    131, 163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
/// Distance-code base values and extra bits (codes 0–29).
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
    13, 13,
];
/// Order in which code-length code lengths are transmitted.
const CLC_ORDER: [usize; 19] =
    [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// Upper bound on decompressed output we accept (zip-bomb guard).
pub const MAX_INFLATED: usize = 64 << 20;

fn fixed_literal_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    l[144..256].iter_mut().for_each(|x| *x = 9);
    l[256..280].iter_mut().for_each(|x| *x = 7);
    l
}

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns an error on malformed streams, truncation, or output larger
/// than [`MAX_INFLATED`].
pub fn inflate(data: &[u8]) -> Result<Vec<u8>> {
    inflate_capped(data, MAX_INFLATED)
}

/// Decompresses a raw DEFLATE stream, refusing to produce more than
/// `cap` output bytes.
///
/// The cap is enforced *during* decompression — a zip bomb is rejected
/// after materializing at most `cap` bytes, not after expanding fully.
///
/// # Errors
///
/// Returns [`crate::Error::DecodedTooLarge`] when the output exceeds
/// `cap`, or another error on malformed or truncated streams.
pub fn inflate_capped(data: &[u8], cap: usize) -> Result<Vec<u8>> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => {
                r.align();
                let header = r.take_bytes(4)?;
                let len = u16::from_le_bytes([header[0], header[1]]) as usize;
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if nlen != !(len as u16) {
                    return Err(corrupt("stored block LEN/NLEN mismatch"));
                }
                out.extend_from_slice(r.take_bytes(len)?);
            }
            1 => {
                let lit = Huffman::from_lengths(&fixed_literal_lengths())?;
                let dist = Huffman::from_lengths(&[5u8; 30])?;
                inflate_block(&mut r, &lit, &dist, &mut out, cap)?;
            }
            2 => {
                let hlit = r.read_bits(5)? as usize + 257;
                let hdist = r.read_bits(5)? as usize + 1;
                let hclen = r.read_bits(4)? as usize + 4;
                if hlit > 286 || hdist > 30 {
                    return Err(corrupt("dynamic header out of range"));
                }
                let mut clc_lengths = [0u8; 19];
                for &pos in CLC_ORDER.iter().take(hclen) {
                    clc_lengths[pos] = r.read_bits(3)? as u8;
                }
                let clc = Huffman::from_lengths(&clc_lengths)?;
                let mut lengths = vec![0u8; hlit + hdist];
                let mut i = 0usize;
                while i < lengths.len() {
                    let sym = clc.decode(&mut r)?;
                    match sym {
                        0..=15 => {
                            lengths[i] = sym as u8;
                            i += 1;
                        }
                        16 => {
                            if i == 0 {
                                return Err(corrupt("repeat with no previous length"));
                            }
                            let prev = lengths[i - 1];
                            let times = 3 + r.read_bits(2)? as usize;
                            for _ in 0..times {
                                if i >= lengths.len() {
                                    return Err(corrupt("repeat past table end"));
                                }
                                lengths[i] = prev;
                                i += 1;
                            }
                        }
                        17 | 18 => {
                            let times = if sym == 17 {
                                3 + r.read_bits(3)? as usize
                            } else {
                                11 + r.read_bits(7)? as usize
                            };
                            if i + times > lengths.len() {
                                return Err(corrupt("zero-run past table end"));
                            }
                            i += times; // already zero
                        }
                        _ => return Err(corrupt("bad code-length symbol")),
                    }
                }
                if lengths[256] == 0 {
                    return Err(corrupt("missing end-of-block code"));
                }
                let lit = Huffman::from_lengths(&lengths[..hlit])?;
                let dist = Huffman::from_lengths(&lengths[hlit..])?;
                inflate_block(&mut r, &lit, &dist, &mut out, cap)?;
            }
            _ => return Err(corrupt("reserved block type")),
        }
        if out.len() > cap {
            return Err(crate::Error::DecodedTooLarge { cap });
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
    cap: usize,
) -> Result<()> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len =
                    LENGTH_BASE[idx] as usize + r.read_bits(LENGTH_EXTRA[idx] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(corrupt("bad distance code"));
                }
                let distance =
                    DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                if distance > out.len() {
                    return Err(corrupt("distance beyond output"));
                }
                let start = out.len() - distance;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                if out.len() > cap {
                    return Err(crate::Error::DecodedTooLarge { cap });
                }
            }
            _ => return Err(corrupt("bad literal/length symbol")),
        }
    }
}

// ---------------------------------------------------------------------
// Minimal compressors (tests + wire re-encoding).
// ---------------------------------------------------------------------

/// DEFLATE-compresses `data` as stored (uncompressed) blocks.
pub fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 65_535 * 5 + 6);
    let mut chunks = data.chunks(65_535).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
        return out;
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = u8::from(chunks.peek().is_none());
        out.push(bfinal); // BFINAL + BTYPE=00 (byte-aligned by construction)
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// DEFLATE-compresses `data` with the fixed Huffman code, literals only
/// (no back-references). Larger than `deflate_stored` for random data but
/// exercises the fixed-Huffman decode path and is what several embedded
/// gzip writers emit.
pub fn deflate_fixed_literals(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut bitpos = 0u32;
    let push_bits = |out: &mut Vec<u8>, bits: u32, count: u32, pos: &mut u32| {
        for i in 0..count {
            if pos.is_multiple_of(8) {
                out.push(0);
            }
            let bit = (bits >> i) & 1;
            let byte = out.last_mut().expect("pushed above");
            *byte |= (bit as u8) << (*pos % 8);
            *pos += 1;
        }
    };
    // BFINAL=1, BTYPE=01.
    push_bits(&mut out, 1, 1, &mut bitpos);
    push_bits(&mut out, 1, 2, &mut bitpos);
    let emit_code = |out: &mut Vec<u8>, code: u32, len: u32, pos: &mut u32| {
        // Huffman codes are written MSB-first.
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            if pos.is_multiple_of(8) {
                out.push(0);
            }
            let byte = out.last_mut().expect("pushed above");
            *byte |= (bit as u8) << (*pos % 8);
            *pos += 1;
        }
    };
    for &b in data {
        let (code, len) = if b < 144 {
            (0x30 + b as u32, 8)
        } else {
            (0x190 + (b - 144) as u32, 9)
        };
        emit_code(&mut out, code, len, &mut bitpos);
    }
    emit_code(&mut out, 0, 7, &mut bitpos); // end-of-block (symbol 256)
    out
}

/// DEFLATE-compresses `count` copies of `byte` using the fixed Huffman
/// code and maximal (length-258, distance-1) back-references — the
/// densest stream this crate can emit, roughly 13 bits per 258 output
/// bytes (a ~160× expansion ratio). Exercises the zip-bomb guard from
/// the compressing side; also handy for synthesizing large compressible
/// bodies without storing them.
pub fn deflate_run(byte: u8, count: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut pos = 0u32;
    let push_bit = |out: &mut Vec<u8>, bit: u32, pos: &mut u32| {
        if pos.is_multiple_of(8) {
            out.push(0);
        }
        *out.last_mut().expect("pushed above") |= (bit as u8) << (*pos % 8);
        *pos += 1;
    };
    let code_msb = |out: &mut Vec<u8>, c: u32, len: u32, pos: &mut u32| {
        for i in (0..len).rev() {
            push_bit(out, (c >> i) & 1, pos);
        }
    };
    let literal = |out: &mut Vec<u8>, b: u8, pos: &mut u32| {
        if b < 144 {
            code_msb(out, 0x30 + b as u32, 8, pos);
        } else {
            code_msb(out, 0x190 + (b - 144) as u32, 9, pos);
        }
    };
    // BFINAL=1, BTYPE=01 (fixed Huffman), LSB first.
    push_bit(&mut out, 1, &mut pos);
    push_bit(&mut out, 1, &mut pos);
    push_bit(&mut out, 0, &mut pos);
    let mut remaining = count;
    if remaining > 0 {
        literal(&mut out, byte, &mut pos);
        remaining -= 1;
    }
    while remaining >= 258 {
        code_msb(&mut out, 0xc5, 8, &mut pos); // length symbol 285 → 258
        code_msb(&mut out, 0, 5, &mut pos); // distance symbol 0 → 1
        remaining -= 258;
    }
    // Tail shorter than one full back-reference: literals are simpler
    // than picking length codes with extra bits, and the tail is < 258
    // bytes regardless of `count`.
    for _ in 0..remaining {
        literal(&mut out, byte, &mut pos);
    }
    code_msb(&mut out, 0, 7, &mut pos); // end of block (symbol 256)
    out
}

// ---------------------------------------------------------------------
// CRC32 and gzip framing.
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, as used by gzip).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Wraps `data` in a gzip container (stored-block deflate inside).
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![
        0x1f, 0x8b, // magic
        0x08, // CM = deflate
        0x00, // no flags
        0, 0, 0, 0, // mtime
        0x00, // XFL
        0xff, // OS = unknown
    ];
    out.extend_from_slice(&deflate_stored(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Whether `data` starts with a gzip magic.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

/// Decompresses a gzip container, validating magic, CRC-32, and ISIZE.
///
/// # Errors
///
/// Returns an error on bad framing, unsupported compression methods,
/// truncation, CRC mismatch, or oversized output.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>> {
    gzip_decompress_capped(data, MAX_INFLATED)
}

/// [`gzip_decompress`] with an explicit output cap.
///
/// # Errors
///
/// Returns [`crate::Error::DecodedTooLarge`] when the decompressed body
/// would exceed `cap` bytes, or another error on bad framing.
pub fn gzip_decompress_capped(data: &[u8], cap: usize) -> Result<Vec<u8>> {
    if !is_gzip(data) {
        return Err(corrupt("missing gzip magic"));
    }
    if data.len() < 18 {
        return Err(corrupt("gzip container truncated"));
    }
    if data[2] != 0x08 {
        return Err(corrupt("unsupported gzip compression method"));
    }
    let flags = data[3];
    let mut pos = 10usize;
    if flags & 0x04 != 0 {
        // FEXTRA
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flags & flag != 0 {
            while *data.get(pos).ok_or_else(|| corrupt("gzip header truncated"))? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flags & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > data.len() {
        return Err(corrupt("gzip header truncated"));
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate_capped(body, cap)?;
    let tail = &data[data.len() - 8..];
    let expect_crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let expect_size = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
    if crc32(&out) != expect_crc {
        return Err(corrupt("gzip crc mismatch"));
    }
    if out.len() as u32 != expect_size {
        return Err(corrupt("gzip size mismatch"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// `Content-Encoding: deflate` (zlib or raw DEFLATE).
// ---------------------------------------------------------------------

/// Adler-32 checksum (RFC 1950, as used by zlib).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // 5552 is the largest n with 255n(n+1)/2 + (n+1)(MOD-1) < 2^32.
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Wraps `data` in a zlib container (RFC 1950, stored-block deflate
/// inside) — the nominal on-wire form of `Content-Encoding: deflate`.
pub fn zlib_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![
        0x78, // CM = deflate, CINFO = 7 (32 KiB window)
        0x01, // FLEVEL = fastest, no preset dict; (0x7801 % 31 == 0)
    ];
    out.extend_from_slice(&deflate_stored(data));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a `Content-Encoding: deflate` body.
///
/// RFC 9110 defines `deflate` as a zlib container (RFC 1950), but a
/// long tail of servers sends the raw DEFLATE stream instead — browsers
/// accept both, so we do too: when the first two bytes check out as a
/// zlib header the wrapper is stripped (and the Adler-32 trailer
/// verified when present), otherwise the bytes inflate as-is.
///
/// # Errors
///
/// Returns an error on malformed streams, truncation, checksum
/// mismatch, or output larger than [`MAX_INFLATED`].
pub fn deflate_decompress(data: &[u8]) -> Result<Vec<u8>> {
    deflate_decompress_capped(data, MAX_INFLATED)
}

/// [`deflate_decompress`] with an explicit output cap.
///
/// # Errors
///
/// Returns [`crate::Error::DecodedTooLarge`] when the decompressed body
/// would exceed `cap` bytes, or another error on malformed streams.
pub fn deflate_decompress_capped(data: &[u8], cap: usize) -> Result<Vec<u8>> {
    if data.len() >= 2 {
        let cmf = data[0];
        let flg = data[1];
        let zlib_header = cmf & 0x0f == 8 // CM = deflate
            && cmf >> 4 <= 7 // CINFO ≤ 32 KiB window
            && flg & 0x20 == 0 // no preset dictionary
            && u16::from_be_bytes([cmf, flg]).is_multiple_of(31);
        if zlib_header {
            match inflate_capped(&data[2..], cap) {
                Ok(out) => {
                    // Deflate consumes bits, not bytes; only a full 4-byte
                    // trailer after the compressed stream is checkable.
                    if data.len() >= 6 {
                        let tail = &data[data.len() - 4..];
                        let expect =
                            u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]);
                        if adler32(&out) != expect {
                            return Err(corrupt("zlib adler32 mismatch"));
                        }
                    }
                    return Ok(out);
                }
                // A stream that blew the cap as zlib would blow it raw
                // too; don't inflate it a second time to find out.
                Err(e @ crate::Error::DecodedTooLarge { .. }) => return Err(e),
                Err(_) => {}
            }
        }
    }
    inflate_capped(data, cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_roundtrip() {
        for data in [&b""[..], b"a", b"hello stored world", &[0u8; 70_000]] {
            let deflated = deflate_stored(data);
            assert_eq!(inflate(&deflated).unwrap(), data);
        }
    }

    #[test]
    fn zlib_roundtrip() {
        for data in [&b""[..], b"a", b"deflate body", &[7u8; 70_000]] {
            let z = zlib_compress(data);
            assert_eq!(deflate_decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn raw_deflate_body_decodes_without_zlib_wrapper() {
        let data = b"raw deflate stream, no RFC 1950 framing";
        assert_eq!(deflate_decompress(&deflate_stored(data)).unwrap(), data);
        assert_eq!(
            deflate_decompress(&deflate_fixed_literals(data)).unwrap(),
            data
        );
    }

    #[test]
    fn zlib_adler_mismatch_is_rejected() {
        let mut z = zlib_compress(b"checked content");
        let last = z.len() - 1;
        z[last] ^= 0xff;
        assert!(deflate_decompress(&z).is_err());
    }

    #[test]
    fn deflate_garbage_is_rejected() {
        assert!(deflate_decompress(&[0x07, 0xff, 0x12, 0x34]).is_err());
    }

    #[test]
    fn adler32_known_vector() {
        // RFC 1950 example: "Wikipedia" → 0x11E60398.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn fixed_huffman_roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let deflated = deflate_fixed_literals(&data);
        assert_eq!(inflate(&deflated).unwrap(), data);
    }

    #[test]
    fn fixed_huffman_empty_input() {
        assert_eq!(inflate(&deflate_fixed_literals(b"")).unwrap(), b"");
    }

    #[test]
    fn known_fixed_huffman_vector() {
        // `echo -n hello | gzip -1 | xxd`-derived deflate body for "hello"
        // with a back-reference-free fixed block produced by this crate's
        // encoder — cross-checked against the RFC by hand:
        // literals h,e,l,l,o then EOB.
        let deflated = deflate_fixed_literals(b"hello");
        assert_eq!(inflate(&deflated).unwrap(), b"hello");
        // First byte: BFINAL=1, BTYPE=01 → bits 1,1,0 then MSB-first code
        // for 'h' (0x30+0x68 = 0x98).
        assert_eq!(deflated[0] & 0b111, 0b011);
    }

    #[test]
    fn deflate_run_round_trips() {
        for count in [0usize, 1, 2, 257, 258, 259, 258 * 3 + 41, 10_000] {
            let wire = deflate_run(b'x', count);
            let out = inflate(&wire).unwrap();
            assert_eq!(out.len(), count, "count {count}");
            assert!(out.iter().all(|&b| b == b'x'));
        }
        // 9-bit literal path (byte ≥ 144).
        assert_eq!(inflate(&deflate_run(0xee, 300)).unwrap(), vec![0xee; 300]);
    }

    #[test]
    fn inflate_cap_rejects_high_ratio_stream() {
        // ~1 MiB of output from ~650 bytes of input (ratio ≈ 1600×).
        let reps = 4096;
        let wire = deflate_run(b'Z', reps * 258 + 1);
        assert!(wire.len() < 8 * 1024, "bomb must be small on the wire: {}", wire.len());
        let full = inflate(&wire).unwrap();
        assert_eq!(full.len(), reps * 258 + 1);
        match inflate_capped(&wire, 64 * 1024) {
            Err(crate::Error::DecodedTooLarge { cap }) => assert_eq!(cap, 64 * 1024),
            other => panic!("expected DecodedTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn gzip_and_deflate_caps_propagate() {
        let body = vec![7u8; 100_000];
        let gz = gzip_compress(&body);
        assert!(matches!(
            gzip_decompress_capped(&gz, 1024),
            Err(crate::Error::DecodedTooLarge { .. })
        ));
        assert_eq!(gzip_decompress_capped(&gz, body.len()).unwrap(), body);
        let z = zlib_compress(&body);
        assert!(matches!(
            deflate_decompress_capped(&z, 1024),
            Err(crate::Error::DecodedTooLarge { .. })
        ));
        assert_eq!(deflate_decompress_capped(&z, body.len()).unwrap(), body);
    }

    #[test]
    fn back_references_expand() {
        // Hand-built fixed block: literal 'a' (code 0x31),
        // length symbol 259 (len 5, code 0b0000011), distance 0 (dist 1,
        // code 00000), EOB. Produces "aaaaaa".
        let mut out = Vec::new();
        let mut pos = 0u32;
        let push = |out: &mut Vec<u8>, bit: u32, pos: &mut u32| {
            if pos.is_multiple_of(8) {
                out.push(0);
            }
            *out.last_mut().unwrap() |= (bit as u8) << (*pos % 8);
            *pos += 1;
        };
        // header: BFINAL=1, BTYPE=01 (LSB first)
        push(&mut out, 1, &mut pos);
        push(&mut out, 1, &mut pos);
        push(&mut out, 0, &mut pos);
        let code = |out: &mut Vec<u8>, c: u32, len: u32, pos: &mut u32| {
            for i in (0..len).rev() {
                push(out, (c >> i) & 1, pos);
            }
        };
        code(&mut out, 0x30 + 'a' as u32, 8, &mut pos); // literal 'a'
        code(&mut out, 0b0000011, 7, &mut pos); // length symbol 259 → 5
        code(&mut out, 0, 5, &mut pos); // distance symbol 0 → 1
        code(&mut out, 0, 7, &mut pos); // end of block
        assert_eq!(inflate(&out).unwrap(), b"aaaaaa");
    }

    #[test]
    fn dynamic_huffman_block_decodes() {
        // Hand-built dynamic block producing "zzz".
        // Literal/length alphabet: 'z' (122) and EOB (256), both length 1.
        // Distance alphabet: one unused zero-length entry.
        // Code-length code: sym18 → len 1 (code 0), sym0 → len 2 (code
        // 10), sym1 → len 2 (code 11).
        let mut out = Vec::new();
        let mut pos = 0u32;
        let push = |out: &mut Vec<u8>, bit: u32, pos: &mut u32| {
            if pos.is_multiple_of(8) {
                out.push(0);
            }
            *out.last_mut().unwrap() |= (bit as u8) << (*pos % 8);
            *pos += 1;
        };
        let bits_lsb = |out: &mut Vec<u8>, v: u32, n: u32, pos: &mut u32| {
            for i in 0..n {
                push(out, (v >> i) & 1, pos);
            }
        };
        let code_msb = |out: &mut Vec<u8>, c: u32, len: u32, pos: &mut u32| {
            for i in (0..len).rev() {
                push(out, (c >> i) & 1, pos);
            }
        };
        bits_lsb(&mut out, 1, 1, &mut pos); // BFINAL
        bits_lsb(&mut out, 2, 2, &mut pos); // BTYPE = 10 (dynamic)
        bits_lsb(&mut out, 0, 5, &mut pos); // HLIT = 257
        bits_lsb(&mut out, 0, 5, &mut pos); // HDIST = 1
        bits_lsb(&mut out, 14, 4, &mut pos); // HCLEN = 18
        // 18 code-length-code lengths in CLC_ORDER
        // [16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1]:
        let clc = [0u32, 0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        for l in clc {
            bits_lsb(&mut out, l, 3, &mut pos);
        }
        // Lengths stream for 258 entries:
        code_msb(&mut out, 0, 1, &mut pos); // sym18: run of zeros…
        bits_lsb(&mut out, 111, 7, &mut pos); // …11 + 111 = 122 zeros (0..=121)
        code_msb(&mut out, 3, 2, &mut pos); // sym1: lengths[122] = 1 ('z')
        code_msb(&mut out, 0, 1, &mut pos); // sym18 again…
        bits_lsb(&mut out, 122, 7, &mut pos); // …133 zeros (123..=255)
        code_msb(&mut out, 3, 2, &mut pos); // sym1: lengths[256] = 1 (EOB)
        code_msb(&mut out, 2, 2, &mut pos); // sym0: distance entry 0
        // Payload: 'z' (code 0) three times, then EOB (code 1).
        for _ in 0..3 {
            code_msb(&mut out, 0, 1, &mut pos);
        }
        code_msb(&mut out, 1, 1, &mut pos);
        assert_eq!(inflate(&out).unwrap(), b"zzz");
    }

    #[test]
    fn gzip_roundtrip_with_crc() {
        for data in [&b""[..], b"x", b"the quick brown fox", &[7u8; 100_000]] {
            let gz = gzip_compress(data);
            assert!(is_gzip(&gz));
            assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }
    }

    #[test]
    fn gzip_detects_corruption() {
        let mut gz = gzip_compress(b"payload body");
        // Flip a body byte: CRC must catch it.
        let mid = gz.len() / 2;
        gz[mid] ^= 0x01;
        assert!(gzip_decompress(&gz).is_err());
    }

    #[test]
    fn gzip_rejects_wrong_framing() {
        assert!(gzip_decompress(b"").is_err());
        assert!(gzip_decompress(b"\x1f\x8b").is_err());
        let mut gz = gzip_compress(b"abc");
        gz[2] = 0x07; // not deflate
        assert!(gzip_decompress(&gz).is_err());
    }

    #[test]
    fn gzip_skips_fname_header() {
        let mut gz = gzip_compress(b"named content");
        gz[3] |= 0x08; // FNAME
        // Insert a zero-terminated name after the 10-byte header.
        let mut with_name = gz[..10].to_vec();
        with_name.extend_from_slice(b"file.txt\0");
        with_name.extend_from_slice(&gz[10..]);
        assert_eq!(gzip_decompress(&with_name).unwrap(), b"named content");
    }

    #[test]
    fn crc32_known_values() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926); // classic check value
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[]).is_err());
        assert!(inflate(&[0xff, 0xff, 0xff]).is_err());
        // Reserved block type 11.
        assert!(inflate(&[0b0000_0111]).is_err());
        // Stored block with wrong NLEN.
        assert!(inflate(&[0x01, 0x02, 0x00, 0x00, 0x00]).is_err());
    }

    #[test]
    fn distance_beyond_output_rejected() {
        // Fixed block: length symbol before any literal.
        let mut out = Vec::new();
        let mut pos = 0u32;
        let push = |out: &mut Vec<u8>, bit: u32, pos: &mut u32| {
            if pos.is_multiple_of(8) {
                out.push(0);
            }
            *out.last_mut().unwrap() |= (bit as u8) << (*pos % 8);
            *pos += 1;
        };
        push(&mut out, 1, &mut pos);
        push(&mut out, 1, &mut pos);
        push(&mut out, 0, &mut pos);
        let code = |out: &mut Vec<u8>, c: u32, len: u32, pos: &mut u32| {
            for i in (0..len).rev() {
                push(out, (c >> i) & 1, pos);
            }
        };
        code(&mut out, 0b0000011, 7, &mut pos); // length with empty window
        code(&mut out, 0, 5, &mut pos);
        assert!(inflate(&out).is_err());
    }
}
