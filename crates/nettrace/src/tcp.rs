//! TCP segment parsing and construction.

use crate::{Error, Result};

/// Minimum TCP header length (no options) in bytes.
pub const MIN_HEADER_LEN: usize = 20;

/// TCP control flags (subset relevant to stream reconstruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN — sender has finished sending.
    pub fin: bool,
    /// SYN — synchronize sequence numbers.
    pub syn: bool,
    /// RST — reset the connection.
    pub rst: bool,
    /// PSH — push buffered data to the application.
    pub psh: bool,
    /// ACK — acknowledgement field is significant.
    pub ack: bool,
}

impl TcpFlags {
    /// Flags for a plain data segment (`PSH|ACK`).
    pub fn data() -> Self {
        TcpFlags { psh: true, ack: true, ..TcpFlags::default() }
    }

    /// Flags for an initial SYN.
    pub fn syn() -> Self {
        TcpFlags { syn: true, ..TcpFlags::default() }
    }

    /// Flags for a FIN|ACK teardown segment.
    pub fn fin() -> Self {
        TcpFlags { fin: true, ack: true, ..TcpFlags::default() }
    }

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A parsed TCP segment borrowing its payload from the input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Segment payload.
    pub payload: &'a [u8],
}

impl<'a> TcpSegment<'a> {
    /// Parses a TCP segment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] when the buffer is shorter than the
    /// declared data offset, and [`Error::InvalidField`] when the data
    /// offset is below 5 words.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated { layer: "tcp", needed: MIN_HEADER_LEN, got: data.len() });
        }
        let data_offset = (data[12] >> 4) as usize * 4;
        if data_offset < MIN_HEADER_LEN {
            return Err(Error::InvalidField { layer: "tcp", field: "data offset" });
        }
        if data.len() < data_offset {
            return Err(Error::Truncated { layer: "tcp", needed: data_offset, got: data.len() });
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_byte(data[13]),
            payload: &data[data_offset..],
        })
    }
}

/// Builds a TCP segment (20-byte header) around `payload`.
pub fn build(
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = vec![0u8; MIN_HEADER_LEN + payload.len()];
    out[0..2].copy_from_slice(&src_port.to_be_bytes());
    out[2..4].copy_from_slice(&dst_port.to_be_bytes());
    out[4..8].copy_from_slice(&seq.to_be_bytes());
    out[8..12].copy_from_slice(&ack.to_be_bytes());
    out[12] = 5 << 4; // data offset: 5 words
    out[13] = flags.to_byte();
    out[14..16].copy_from_slice(&0xffffu16.to_be_bytes()); // window
    out[MIN_HEADER_LEN..].copy_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let seg = build(49152, 80, 1000, 2000, TcpFlags::data(), b"GET /");
        let parsed = TcpSegment::parse(&seg).unwrap();
        assert_eq!(parsed.src_port, 49152);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.seq, 1000);
        assert_eq!(parsed.ack, 2000);
        assert!(parsed.flags.psh && parsed.flags.ack);
        assert!(!parsed.flags.syn && !parsed.flags.fin && !parsed.flags.rst);
        assert_eq!(parsed.payload, b"GET /");
    }

    #[test]
    fn flag_byte_roundtrip() {
        for b in 0..32u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            TcpSegment::parse(&[0u8; 19]),
            Err(Error::Truncated { layer: "tcp", .. })
        ));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut seg = build(1, 2, 0, 0, TcpFlags::syn(), b"");
        seg[12] = 4 << 4;
        assert!(matches!(
            TcpSegment::parse(&seg),
            Err(Error::InvalidField { field: "data offset", .. })
        ));
    }

    #[test]
    fn respects_options_in_data_offset() {
        // Build a header claiming 6 words (4 bytes of options).
        let mut seg = build(1, 2, 7, 0, TcpFlags::data(), b"xxxxBODY");
        seg[12] = 6 << 4;
        let parsed = TcpSegment::parse(&seg).unwrap();
        assert_eq!(parsed.payload, b"BODY");
    }
}
