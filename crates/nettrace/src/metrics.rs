//! Ingest telemetry: the [`IngestReport`] counters exported as
//! registry metrics.
//!
//! [`IngestReport`] stays the single source of truth for what one
//! capture recovered and lost — it is cheap, copyable, and travels
//! with the forensic result. [`IngestMetrics`] is the long-lived
//! aggregation layer on top: call [`IngestMetrics::record`] with each
//! capture's (fresh) report and the per-layer counts accumulate into
//! shared telemetry counters, one per report field, where they merge
//! with the rest of the pipeline's metrics and render to Prometheus.
//!
//! The 1:1 field↔counter mapping is load-bearing: the fault-injection
//! suite asserts that after any sequence of hostile captures the
//! telemetry counters and the merged reports agree exactly.

use telemetry::{Counter, Registry};

use crate::ingest::IngestReport;

/// Counter handles mirroring every [`IngestReport`] field.
#[derive(Clone, Debug)]
pub struct IngestMetrics {
    pub captures: Counter,
    pub packets_read: Counter,
    pub records_dropped: Counter,
    pub bytes_skipped: Counter,
    pub capture_truncations: Counter,
    pub packets_dropped_decode: Counter,
    pub packets_non_tcp: Counter,
    pub streams_total: Counter,
    pub streams_salvaged: Counter,
    pub streams_discarded: Counter,
    pub streams_skipped_non_http: Counter,
    pub reassembly_gaps: Counter,
    pub transactions_recovered: Counter,
    pub gzip_failures: Counter,
    pub deflate_failures: Counter,
    pub chunked_failures: Counter,
    pub decode_cap_exceeded: Counter,
}

impl IngestMetrics {
    /// Registers (or re-attaches to) the ingest counters in `registry`.
    pub fn new(registry: &Registry) -> Self {
        IngestMetrics {
            captures: registry
                .counter("ingest_captures_total", "Captures ingested through the lenient path"),
            packets_read: registry
                .counter("ingest_packets_read_total", "Capture records decoded into packets"),
            records_dropped: registry
                .counter("ingest_records_dropped_total", "Capture records skipped or abandoned"),
            bytes_skipped: registry
                .counter("ingest_bytes_skipped_total", "Capture bytes abandoned undecoded"),
            capture_truncations: registry.counter(
                "ingest_capture_truncations_total",
                "Captures that ended mid-record or mid-block",
            ),
            packets_dropped_decode: registry.counter(
                "ingest_packets_dropped_decode_total",
                "Packets that failed Ethernet/IPv4/TCP decoding",
            ),
            packets_non_tcp: registry.counter(
                "ingest_packets_non_tcp_total",
                "Well-formed packets that are not IPv4/TCP",
            ),
            streams_total: registry.counter(
                "ingest_streams_total",
                "Reassembled unidirectional streams seen",
            ),
            streams_salvaged: registry.counter(
                "ingest_streams_salvaged_total",
                "Streams with a parseable prefix kept after a mid-stream error",
            ),
            streams_discarded: registry.counter(
                "ingest_streams_discarded_total",
                "Streams quarantined without recovering a message",
            ),
            streams_skipped_non_http: registry.counter(
                "ingest_streams_non_http_total",
                "Streams carrying a non-HTTP protocol",
            ),
            reassembly_gaps: registry.counter(
                "ingest_reassembly_gaps_total",
                "Sequence discontinuities skipped during TCP reassembly",
            ),
            transactions_recovered: registry.counter(
                "ingest_transactions_recovered_total",
                "HTTP transactions recovered end-to-end",
            ),
            gzip_failures: registry.counter(
                "ingest_gzip_failures_total",
                "Response bodies whose gzip encoding failed to decode",
            ),
            deflate_failures: registry.counter(
                "ingest_deflate_failures_total",
                "Response bodies whose deflate encoding failed to decode",
            ),
            chunked_failures: registry.counter(
                "ingest_chunked_failures_total",
                "Chunked transfer framing errors",
            ),
            decode_cap_exceeded: registry.counter(
                "ingest_decode_cap_exceeded_total",
                "Response bodies kept encoded because decoding would exceed the expansion cap",
            ),
        }
    }

    /// Folds one capture's report into the counters. `report` must be
    /// the per-capture delta (a freshly-zeroed report threaded through
    /// one lenient ingest), not a running total — counters are
    /// monotone and would double-count.
    pub fn record(&self, report: &IngestReport) {
        self.captures.inc();
        self.packets_read.add(report.packets_read);
        self.records_dropped.add(report.records_dropped);
        self.bytes_skipped.add(report.bytes_skipped);
        self.capture_truncations.add(u64::from(report.capture_truncated));
        self.packets_dropped_decode.add(report.packets_dropped_decode);
        self.packets_non_tcp.add(report.packets_non_tcp);
        self.streams_total.add(report.streams_total);
        self.streams_salvaged.add(report.streams_salvaged);
        self.streams_discarded.add(report.streams_discarded);
        self.streams_skipped_non_http.add(report.streams_skipped_non_http);
        self.reassembly_gaps.add(report.reassembly_gaps);
        self.transactions_recovered.add(report.transactions_recovered);
        self.gzip_failures.add(report.gzip_failures);
        self.deflate_failures.add(report.deflate_failures);
        self.chunked_failures.add(report.chunked_failures);
        self.decode_cap_exceeded.add(report.decode_cap_exceeded);
    }

    /// Asserts the counters equal a merged report plus a capture count
    /// — the consistency contract the fault-injection suite leans on.
    /// Panics with the first mismatching layer.
    pub fn assert_consistent_with(&self, merged: &IngestReport, captures: u64, truncated: u64) {
        let pairs: [(&str, u64, u64); 17] = [
            ("captures", self.captures.get(), captures),
            ("packets_read", self.packets_read.get(), merged.packets_read),
            ("records_dropped", self.records_dropped.get(), merged.records_dropped),
            ("bytes_skipped", self.bytes_skipped.get(), merged.bytes_skipped),
            ("capture_truncations", self.capture_truncations.get(), truncated),
            (
                "packets_dropped_decode",
                self.packets_dropped_decode.get(),
                merged.packets_dropped_decode,
            ),
            ("packets_non_tcp", self.packets_non_tcp.get(), merged.packets_non_tcp),
            ("streams_total", self.streams_total.get(), merged.streams_total),
            ("streams_salvaged", self.streams_salvaged.get(), merged.streams_salvaged),
            ("streams_discarded", self.streams_discarded.get(), merged.streams_discarded),
            (
                "streams_skipped_non_http",
                self.streams_skipped_non_http.get(),
                merged.streams_skipped_non_http,
            ),
            ("reassembly_gaps", self.reassembly_gaps.get(), merged.reassembly_gaps),
            (
                "transactions_recovered",
                self.transactions_recovered.get(),
                merged.transactions_recovered,
            ),
            ("gzip_failures", self.gzip_failures.get(), merged.gzip_failures),
            ("deflate_failures", self.deflate_failures.get(), merged.deflate_failures),
            ("chunked_failures", self.chunked_failures.get(), merged.chunked_failures),
            ("decode_cap_exceeded", self.decode_cap_exceeded.get(), merged.decode_cap_exceeded),
        ];
        for (name, counter, report) in pairs {
            assert_eq!(counter, report, "telemetry/IngestReport divergence on {name}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every field maps to its own counter: distinct values per field
    /// would expose a crossed or forgotten mapping.
    #[test]
    fn record_maps_every_field_exactly() {
        let registry = Registry::new();
        let metrics = IngestMetrics::new(&registry);
        let report = IngestReport {
            packets_read: 2,
            records_dropped: 3,
            bytes_skipped: 5,
            capture_truncated: true,
            packets_dropped_decode: 7,
            packets_non_tcp: 11,
            streams_total: 13,
            streams_salvaged: 17,
            streams_discarded: 19,
            streams_skipped_non_http: 23,
            reassembly_gaps: 29,
            transactions_recovered: 31,
            gzip_failures: 37,
            deflate_failures: 43,
            chunked_failures: 41,
            decode_cap_exceeded: 47,
        };
        metrics.record(&report);
        metrics.assert_consistent_with(&report, 1, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ingest_packets_read_total"), 2);
        assert_eq!(snap.counter("ingest_capture_truncations_total"), 1);
        assert_eq!(snap.counter("ingest_reassembly_gaps_total"), 29);
        assert_eq!(snap.counter("ingest_deflate_failures_total"), 43);
        assert_eq!(snap.counter("ingest_chunked_failures_total"), 41);
    }

    #[test]
    fn record_accumulates_across_captures() {
        let registry = Registry::new();
        let metrics = IngestMetrics::new(&registry);
        let a = IngestReport { packets_read: 4, ..IngestReport::new() };
        let b = IngestReport { packets_read: 6, capture_truncated: true, ..IngestReport::new() };
        metrics.record(&a);
        metrics.record(&b);
        let mut merged = a;
        merged.merge(&b);
        metrics.assert_consistent_with(&merged, 2, 1);
    }
}
