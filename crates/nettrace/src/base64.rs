//! Minimal standard-alphabet base64 (RFC 4648, with padding).
//!
//! Exploit kits routinely hide redirect targets in `atob(...)`-style
//! obfuscated JavaScript; the traffic generator encodes such payloads and
//! DynaMiner's redirect miner decodes them, so the codec lives here in the
//! shared substrate.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as standard base64 with `=` padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Decodes standard base64, ignoring ASCII whitespace. Returns `None` on
/// any invalid character or bad padding.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let mut vals = Vec::with_capacity(text.len());
    let mut padding = 0usize;
    for c in text.bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            padding += 1;
            continue;
        }
        if padding > 0 {
            return None; // data after padding
        }
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        };
        vals.push(v);
    }
    if !(vals.len() + padding).is_multiple_of(4) || padding > 2 {
        return None;
    }
    let mut out = Vec::with_capacity(vals.len() * 3 / 4);
    for chunk in vals.chunks(4) {
        let n = chunk.iter().fold(0u32, |acc, &v| (acc << 6) | v as u32)
            << (6 * (4 - chunk.len()));
        let bytes = n.to_be_bytes();
        match chunk.len() {
            4 => out.extend_from_slice(&bytes[1..4]),
            3 => out.extend_from_slice(&bytes[1..3]),
            2 => out.push(bytes[1]),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), enc);
            assert_eq!(decode(enc).unwrap(), raw);
        }
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(decode("Zm9v!").is_none());
        assert!(decode("Zg=x").is_none());
        assert!(decode("Zg===").is_none());
        assert!(decode("Z").is_none());
    }
}
