//! HAProxy PROXY-protocol header parsing (versions 1 and 2).
//!
//! An inline proxy deployed behind a load balancer sees the balancer's
//! address as the TCP peer; the PROXY protocol prepends one header to
//! each connection carrying the *original* client address. DynaMiner
//! shards all detector state by client address, so recovering it is not
//! cosmetic — without the real address every conversation would collapse
//! onto the balancer's IP and onto one shard.
//!
//! [`parse_proxy_header`] is incremental (`Ok(None)` = feed more bytes)
//! and **fail-closed**: anything that is not a well-formed header of a
//! supported version is an error with a machine-usable
//! [`reason`](ProxyProtoError::reason), and the caller is expected to
//! drop the connection. Accepting a malformed header would let a client
//! forge its identity, which for a detector keyed by client address is
//! an evasion primitive.

use std::net::Ipv4Addr;

/// The 12-byte constant signature every v2 header starts with.
pub const V2_SIGNATURE: [u8; 12] =
    [0x0d, 0x0a, 0x0d, 0x0a, 0x00, 0x0d, 0x0a, 0x51, 0x55, 0x49, 0x54, 0x0a];

/// Longest permitted v1 header line including CRLF (per the spec: 107
/// bytes covers the largest TCP6 form).
pub const V1_MAX_LEN: usize = 107;

/// Cap on the v2 payload length field. The spec allows up to 65535
/// bytes of TLVs; no balancer emits more than a few hundred, so a
/// larger claim is treated as hostile rather than buffered.
pub const V2_MAX_LEN: usize = 2048;

/// A successfully parsed PROXY-protocol header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyHeader {
    /// v2 `LOCAL` (health check) or v1 `UNKNOWN`: the sender declines
    /// to relay an address — use the socket peer address.
    Local,
    /// An IPv4 TCP connection with relayed endpoints.
    Tcp4 {
        /// Original client address and port.
        src: (Ipv4Addr, u16),
        /// Original destination address and port.
        dst: (Ipv4Addr, u16),
    },
    /// An IPv6 TCP connection. Parsed and reported faithfully; the
    /// IPv4-only engine falls back to the socket peer address unless
    /// the address is IPv4-mapped.
    Tcp6 {
        /// Original client address and port.
        src: ([u8; 16], u16),
        /// Original destination address and port.
        dst: ([u8; 16], u16),
    },
}

impl ProxyHeader {
    /// The relayed client endpoint as IPv4, when representable:
    /// `Tcp4` directly, `Tcp6` only for IPv4-mapped (`::ffff:a.b.c.d`)
    /// addresses.
    pub fn client_v4(&self) -> Option<(Ipv4Addr, u16)> {
        match self {
            ProxyHeader::Local => None,
            ProxyHeader::Tcp4 { src, .. } => Some(*src),
            ProxyHeader::Tcp6 { src: (addr, port), .. } => {
                let mapped = addr[..10] == [0; 10] && addr[10] == 0xff && addr[11] == 0xff;
                mapped
                    .then(|| (Ipv4Addr::new(addr[12], addr[13], addr[14], addr[15]), *port))
            }
        }
    }
}

/// Why a PROXY-protocol header was rejected. Every variant maps to one
/// telemetry counter so rejection reasons are observable in production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyProtoError {
    /// The first bytes match neither the v1 text form nor the v2
    /// binary signature.
    BadSignature,
    /// Structurally invalid: bad field counts, unparsable addresses or
    /// ports, a v2 length too short for its address family, or an
    /// unknown v2 command.
    Malformed,
    /// The header claims or occupies more bytes than the caps allow
    /// ([`V1_MAX_LEN`] / [`V2_MAX_LEN`]).
    Oversized,
    /// A v2 header with a version nibble other than 2.
    UnsupportedVersion,
    /// A transport/family this engine does not accept (v1 protocols
    /// beyond TCP4/TCP6/UNKNOWN, v2 families beyond UNSPEC/TCP4/TCP6).
    UnsupportedFamily,
}

impl ProxyProtoError {
    /// Short stable slug for telemetry counter names.
    pub fn reason(&self) -> &'static str {
        match self {
            ProxyProtoError::BadSignature => "bad_signature",
            ProxyProtoError::Malformed => "malformed",
            ProxyProtoError::Oversized => "oversized",
            ProxyProtoError::UnsupportedVersion => "unsupported_version",
            ProxyProtoError::UnsupportedFamily => "unsupported_family",
        }
    }

    /// All rejection reasons, for registering one counter per reason.
    pub fn reasons() -> [&'static str; 5] {
        ["bad_signature", "malformed", "oversized", "unsupported_version", "unsupported_family"]
    }
}

impl std::fmt::Display for ProxyProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ProxyProtoError::BadSignature => "not a PROXY protocol header",
            ProxyProtoError::Malformed => "malformed PROXY protocol header",
            ProxyProtoError::Oversized => "PROXY protocol header exceeds size cap",
            ProxyProtoError::UnsupportedVersion => "unsupported PROXY protocol version",
            ProxyProtoError::UnsupportedFamily => "unsupported PROXY protocol address family",
        };
        f.write_str(msg)
    }
}

/// Attempts to parse a PROXY-protocol header (v1 or v2, auto-detected)
/// from the front of `buf`.
///
/// Returns `Ok(None)` when the bytes so far are a valid prefix but the
/// header is incomplete, or `Ok(Some((header, consumed)))` on success —
/// application bytes begin at `buf[consumed..]`.
///
/// # Errors
///
/// Returns a [`ProxyProtoError`] naming the rejection reason; the
/// connection should be dropped (fail-closed).
pub fn parse_proxy_header(
    buf: &[u8],
) -> std::result::Result<Option<(ProxyHeader, usize)>, ProxyProtoError> {
    // Version sniff on the longest available prefix: the v1 and v2
    // magics diverge at the first byte, so matching the shorter prefix
    // against both is unambiguous.
    let sig_len = buf.len().min(V2_SIGNATURE.len());
    if buf[..sig_len] == V2_SIGNATURE[..sig_len] {
        if buf.len() < V2_SIGNATURE.len() {
            return Ok(None);
        }
        return parse_v2(buf);
    }
    const V1_MAGIC: &[u8] = b"PROXY ";
    let m = buf.len().min(V1_MAGIC.len());
    if buf[..m] == V1_MAGIC[..m] {
        if buf.len() < V1_MAGIC.len() {
            return Ok(None);
        }
        return parse_v1(buf);
    }
    Err(ProxyProtoError::BadSignature)
}

fn parse_v1(buf: &[u8]) -> std::result::Result<Option<(ProxyHeader, usize)>, ProxyProtoError> {
    let window = &buf[..buf.len().min(V1_MAX_LEN)];
    let Some(nl) = window.iter().position(|&b| b == b'\n') else {
        if buf.len() >= V1_MAX_LEN {
            return Err(ProxyProtoError::Oversized);
        }
        return Ok(None);
    };
    if nl == 0 || window[nl - 1] != b'\r' {
        return Err(ProxyProtoError::Malformed);
    }
    let line = std::str::from_utf8(&window[..nl - 1]).map_err(|_| ProxyProtoError::Malformed)?;
    let consumed = nl + 1;
    let mut fields = line.split(' ');
    if fields.next() != Some("PROXY") {
        return Err(ProxyProtoError::BadSignature);
    }
    let proto = fields.next().ok_or(ProxyProtoError::Malformed)?;
    match proto {
        // "PROXY UNKNOWN" may carry trailing junk per the spec; the
        // sender is declaring it has nothing to relay.
        "UNKNOWN" => Ok(Some((ProxyHeader::Local, consumed))),
        "TCP4" | "TCP6" => {
            let src_addr = fields.next().ok_or(ProxyProtoError::Malformed)?;
            let dst_addr = fields.next().ok_or(ProxyProtoError::Malformed)?;
            let src_port = parse_port(fields.next().ok_or(ProxyProtoError::Malformed)?)?;
            let dst_port = parse_port(fields.next().ok_or(ProxyProtoError::Malformed)?)?;
            if fields.next().is_some() {
                return Err(ProxyProtoError::Malformed);
            }
            let header = if proto == "TCP4" {
                ProxyHeader::Tcp4 {
                    src: (parse_v4(src_addr)?, src_port),
                    dst: (parse_v4(dst_addr)?, dst_port),
                }
            } else {
                ProxyHeader::Tcp6 {
                    src: (parse_v6(src_addr)?, src_port),
                    dst: (parse_v6(dst_addr)?, dst_port),
                }
            };
            Ok(Some((header, consumed)))
        }
        _ => Err(ProxyProtoError::UnsupportedFamily),
    }
}

fn parse_port(s: &str) -> std::result::Result<u16, ProxyProtoError> {
    // Leading zeros and signs are forbidden by the spec ("0" itself is
    // a valid ephemeral-source port).
    if s.len() > 1 && s.starts_with('0') {
        return Err(ProxyProtoError::Malformed);
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ProxyProtoError::Malformed);
    }
    s.parse().map_err(|_| ProxyProtoError::Malformed)
}

fn parse_v4(s: &str) -> std::result::Result<Ipv4Addr, ProxyProtoError> {
    s.parse().map_err(|_| ProxyProtoError::Malformed)
}

fn parse_v6(s: &str) -> std::result::Result<[u8; 16], ProxyProtoError> {
    s.parse::<std::net::Ipv6Addr>().map(|a| a.octets()).map_err(|_| ProxyProtoError::Malformed)
}

fn parse_v2(buf: &[u8]) -> std::result::Result<Option<(ProxyHeader, usize)>, ProxyProtoError> {
    if buf.len() < 16 {
        return Ok(None);
    }
    let ver_cmd = buf[12];
    if ver_cmd >> 4 != 2 {
        return Err(ProxyProtoError::UnsupportedVersion);
    }
    let cmd = ver_cmd & 0x0f;
    let fam = buf[13];
    let len = u16::from_be_bytes([buf[14], buf[15]]) as usize;
    if len > V2_MAX_LEN {
        return Err(ProxyProtoError::Oversized);
    }
    let total = 16 + len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[16..total];
    match cmd {
        // LOCAL: address block (if any) must be ignored.
        0 => Ok(Some((ProxyHeader::Local, total))),
        1 => match fam {
            // UNSPEC: a proxy that cannot classify the transport.
            0x00 => Ok(Some((ProxyHeader::Local, total))),
            // AF_INET / STREAM.
            0x11 => {
                if body.len() < 12 {
                    return Err(ProxyProtoError::Malformed);
                }
                let src = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                let dst = Ipv4Addr::new(body[4], body[5], body[6], body[7]);
                let src_port = u16::from_be_bytes([body[8], body[9]]);
                let dst_port = u16::from_be_bytes([body[10], body[11]]);
                Ok(Some((
                    ProxyHeader::Tcp4 { src: (src, src_port), dst: (dst, dst_port) },
                    total,
                )))
            }
            // AF_INET6 / STREAM.
            0x21 => {
                if body.len() < 36 {
                    return Err(ProxyProtoError::Malformed);
                }
                let mut src = [0u8; 16];
                let mut dst = [0u8; 16];
                src.copy_from_slice(&body[..16]);
                dst.copy_from_slice(&body[16..32]);
                let src_port = u16::from_be_bytes([body[32], body[33]]);
                let dst_port = u16::from_be_bytes([body[34], body[35]]);
                Ok(Some((
                    ProxyHeader::Tcp6 { src: (src, src_port), dst: (dst, dst_port) },
                    total,
                )))
            }
            _ => Err(ProxyProtoError::UnsupportedFamily),
        },
        _ => Err(ProxyProtoError::Malformed),
    }
}

/// Renders a v1 `PROXY TCP4` header line for `src`/`dst` — what a load
/// balancer (or the loopback replay driver) prepends to a connection.
pub fn encode_v1_tcp4(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
    format!("PROXY TCP4 {} {} {} {}\r\n", src.0, dst.0, src.1, dst.1).into_bytes()
}

/// Renders a v2 `PROXY` header for an IPv4 TCP connection.
pub fn encode_v2_tcp4(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
    let mut out = V2_SIGNATURE.to_vec();
    out.push(0x21); // version 2, command PROXY
    out.push(0x11); // AF_INET, STREAM
    out.extend_from_slice(&12u16.to_be_bytes());
    out.extend_from_slice(&src.0.octets());
    out.extend_from_slice(&dst.0.octets());
    out.extend_from_slice(&src.1.to_be_bytes());
    out.extend_from_slice(&dst.1.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(buf: &[u8]) -> std::result::Result<Option<(ProxyHeader, usize)>, ProxyProtoError> {
        // Every prefix of a valid header must be `Ok(None)`, never an
        // error: incremental callers feed bytes as they arrive.
        if parse_proxy_header(buf).is_ok() {
            for cut in 0..buf.len() {
                match parse_proxy_header(&buf[..cut]) {
                    Ok(Some((_, consumed))) => assert!(consumed <= cut),
                    Ok(None) => {}
                    Err(e) => panic!("prefix of len {cut} rejected: {e:?}"),
                }
            }
        }
        parse_proxy_header(buf)
    }

    #[test]
    fn v1_tcp4_golden() {
        let hdr = b"PROXY TCP4 192.168.0.1 10.0.0.9 56324 443\r\nGET /";
        let (h, consumed) = parse_all(hdr).unwrap().unwrap();
        assert_eq!(consumed, hdr.len() - 5);
        assert_eq!(
            h,
            ProxyHeader::Tcp4 {
                src: (Ipv4Addr::new(192, 168, 0, 1), 56324),
                dst: (Ipv4Addr::new(10, 0, 0, 9), 443),
            }
        );
        assert_eq!(h.client_v4(), Some((Ipv4Addr::new(192, 168, 0, 1), 56324)));
    }

    #[test]
    fn v1_tcp6_golden() {
        let hdr = b"PROXY TCP6 2001:db8::1 ::ffff:10.0.0.2 4242 80\r\n";
        let (h, consumed) = parse_all(hdr).unwrap().unwrap();
        assert_eq!(consumed, hdr.len());
        match &h {
            ProxyHeader::Tcp6 { src, dst } => {
                assert_eq!(src.1, 4242);
                assert_eq!(dst.1, 80);
                assert_eq!(src.0[..4], [0x20, 0x01, 0x0d, 0xb8]);
            }
            other => panic!("wrong header {other:?}"),
        }
        // Plain (non-mapped) IPv6 source has no IPv4 form.
        assert_eq!(h.client_v4(), None);
    }

    #[test]
    fn v1_tcp6_mapped_source_recovers_v4() {
        let hdr = b"PROXY TCP6 ::ffff:172.16.0.5 2001:db8::2 9999 80\r\n";
        let (h, _) = parse_all(hdr).unwrap().unwrap();
        assert_eq!(h.client_v4(), Some((Ipv4Addr::new(172, 16, 0, 5), 9999)));
    }

    #[test]
    fn v1_unknown_is_local() {
        let hdr = b"PROXY UNKNOWN whatever trailing junk\r\n";
        let (h, consumed) = parse_all(hdr).unwrap().unwrap();
        assert_eq!(h, ProxyHeader::Local);
        assert_eq!(consumed, hdr.len());
        assert_eq!(h.client_v4(), None);
    }

    #[test]
    fn v2_proxy_golden() {
        let src = (Ipv4Addr::new(198, 51, 100, 7), 40001);
        let dst = (Ipv4Addr::new(203, 0, 113, 1), 8080);
        let mut wire = encode_v2_tcp4(src, dst);
        wire.extend_from_slice(b"POST /");
        let (h, consumed) = parse_all(&wire).unwrap().unwrap();
        assert_eq!(consumed, 28);
        assert_eq!(h, ProxyHeader::Tcp4 { src, dst });
    }

    #[test]
    fn v2_local_golden() {
        let mut wire = V2_SIGNATURE.to_vec();
        wire.push(0x20); // version 2, command LOCAL
        wire.push(0x00); // UNSPEC
        wire.extend_from_slice(&0u16.to_be_bytes());
        let (h, consumed) = parse_all(&wire).unwrap().unwrap();
        assert_eq!(h, ProxyHeader::Local);
        assert_eq!(consumed, 16);
    }

    #[test]
    fn v2_tcp6_round_trips() {
        let mut wire = V2_SIGNATURE.to_vec();
        wire.push(0x21);
        wire.push(0x21); // AF_INET6, STREAM
        wire.extend_from_slice(&36u16.to_be_bytes());
        let src: std::net::Ipv6Addr = "::ffff:10.1.2.3".parse().unwrap();
        let dst: std::net::Ipv6Addr = "2001:db8::9".parse().unwrap();
        wire.extend_from_slice(&src.octets());
        wire.extend_from_slice(&dst.octets());
        wire.extend_from_slice(&700u16.to_be_bytes());
        wire.extend_from_slice(&80u16.to_be_bytes());
        let (h, consumed) = parse_all(&wire).unwrap().unwrap();
        assert_eq!(consumed, 52);
        assert_eq!(h.client_v4(), Some((Ipv4Addr::new(10, 1, 2, 3), 700)));
    }

    #[test]
    fn truncated_headers_ask_for_more() {
        assert_eq!(parse_proxy_header(b""), Ok(None));
        assert_eq!(parse_proxy_header(b"PRO"), Ok(None));
        assert_eq!(parse_proxy_header(b"PROXY TCP4 1.2.3.4"), Ok(None));
        assert_eq!(parse_proxy_header(&V2_SIGNATURE[..7]), Ok(None));
        let mut v2 = V2_SIGNATURE.to_vec();
        v2.extend_from_slice(&[0x21, 0x11, 0x00, 0x0c, 1, 2, 3]); // 3 of 12 body bytes
        assert_eq!(parse_proxy_header(&v2), Ok(None));
    }

    #[test]
    fn oversized_headers_fail_closed() {
        // v1: no CRLF within the 107-byte cap.
        let mut line = b"PROXY TCP4 1.2.3.4 5.6.7.8 80 80".to_vec();
        line.extend(std::iter::repeat_n(b' ', 120));
        assert_eq!(parse_proxy_header(&line), Err(ProxyProtoError::Oversized));
        // v2: length field beyond the cap.
        let mut v2 = V2_SIGNATURE.to_vec();
        v2.extend_from_slice(&[0x21, 0x11]);
        v2.extend_from_slice(&(V2_MAX_LEN as u16 + 1).to_be_bytes());
        assert_eq!(parse_proxy_header(&v2), Err(ProxyProtoError::Oversized));
    }

    #[test]
    fn garbage_is_bad_signature() {
        assert_eq!(parse_proxy_header(b"GET / HTTP/1.1\r\n"), Err(ProxyProtoError::BadSignature));
        assert_eq!(parse_proxy_header(b"\x16\x03\x01\x02\x00"), Err(ProxyProtoError::BadSignature));
        assert_eq!(
            parse_proxy_header(b"PROXY-ish nonsense\r\n"),
            Err(ProxyProtoError::BadSignature)
        );
    }

    #[test]
    fn malformed_v1_variants() {
        for bad in [
            "PROXY TCP4 1.2.3.4 5.6.7.8 80\r\n",              // missing field
            "PROXY TCP4 1.2.3.4 5.6.7.8 80 80 extra\r\n",     // trailing field
            "PROXY TCP4 1.2.3.999 5.6.7.8 80 80\r\n",         // bad address
            "PROXY TCP4 1.2.3.4 5.6.7.8 70000 80\r\n",        // port overflow
            "PROXY TCP4 1.2.3.4 5.6.7.8 080 80\r\n",          // leading zero
            "PROXY TCP4 1.2.3.4 5.6.7.8 -1 80\r\n",           // signed port
            "PROXY TCP6 1.2.3.4 ::1 80 80\r\n",               // v4 addr in TCP6
        ] {
            assert_eq!(
                parse_proxy_header(bad.as_bytes()),
                Err(ProxyProtoError::Malformed),
                "{bad:?}"
            );
        }
        // Bare LF without CR.
        assert_eq!(
            parse_proxy_header(b"PROXY UNKNOWN\n"),
            Err(ProxyProtoError::Malformed)
        );
    }

    #[test]
    fn unsupported_version_and_family() {
        assert_eq!(
            parse_proxy_header(b"PROXY UDP4 1.2.3.4 5.6.7.8 80 80\r\n"),
            Err(ProxyProtoError::UnsupportedFamily)
        );
        let mut v3 = V2_SIGNATURE.to_vec();
        v3.extend_from_slice(&[0x31, 0x11, 0x00, 0x00]);
        assert_eq!(parse_proxy_header(&v3), Err(ProxyProtoError::UnsupportedVersion));
        let mut unix = V2_SIGNATURE.to_vec();
        unix.extend_from_slice(&[0x21, 0x31, 0x00, 0x00]); // AF_UNIX
        assert_eq!(parse_proxy_header(&unix), Err(ProxyProtoError::UnsupportedFamily));
        // v2 with an unknown command nibble.
        let mut cmd = V2_SIGNATURE.to_vec();
        cmd.extend_from_slice(&[0x2f, 0x11, 0x00, 0x00]);
        assert_eq!(parse_proxy_header(&cmd), Err(ProxyProtoError::Malformed));
        // v2 TCP4 whose length can't hold the address block.
        let mut short = V2_SIGNATURE.to_vec();
        short.extend_from_slice(&[0x21, 0x11, 0x00, 0x04, 1, 2, 3, 4]);
        assert_eq!(parse_proxy_header(&short), Err(ProxyProtoError::Malformed));
    }

    #[test]
    fn reason_slugs_are_stable() {
        assert_eq!(ProxyProtoError::BadSignature.reason(), "bad_signature");
        let all = ProxyProtoError::reasons();
        assert_eq!(all.len(), 5);
        for r in all {
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn v1_round_trip_through_encoder() {
        let src = (Ipv4Addr::new(10, 0, 0, 77), 49161);
        let dst = (Ipv4Addr::new(192, 0, 2, 4), 80);
        let wire = encode_v1_tcp4(src, dst);
        let (h, consumed) = parse_proxy_header(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(h, ProxyHeader::Tcp4 { src, dst });
    }
}
