//! SIMD byte scanning for the hot parse paths.
//!
//! The HTTP parser and the redirect miner spend their time finding
//! delimiters (`\r\n\r\n`, `\r\n`, `:`) and anchor bytes in entity
//! bodies. The scalar forms (`windows(n).position(..)`, `str::find`)
//! compare one byte per iteration; the scanners here examine 16 bytes
//! per step with SSE2 on `x86_64` (baseline for the target, no feature
//! detection needed) and fall back to a SWAR word-at-a-time scan on
//! other architectures. No external crates: the build environment is
//! offline, so this is a hand-rolled `memchr` subset covering exactly
//! what the parsers need.

/// Returns the index of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        memchr_sse2(needle, haystack)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        memchr_swar(needle, haystack)
    }
}

/// Returns the index of the first byte equal to `a` or `b`.
#[inline]
pub fn memchr2(a: u8, b: u8, haystack: &[u8]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        memchr2_sse2(a, b, haystack)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        haystack.iter().position(|&c| c == a || c == b)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn memchr_sse2(needle: u8, haystack: &[u8]) -> Option<usize> {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8};
    // SAFETY: SSE2 is part of the x86_64 baseline; loads are unaligned
    // (`loadu`) and stay within `haystack` by the loop bounds.
    unsafe {
        let pat = _mm_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 16 <= haystack.len() {
            let chunk = _mm_loadu_si128(haystack.as_ptr().add(i).cast());
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pat));
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
        haystack[i..].iter().position(|&c| c == needle).map(|p| i + p)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn memchr2_sse2(a: u8, b: u8, haystack: &[u8]) -> Option<usize> {
    use std::arch::x86_64::{
        _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8,
    };
    // SAFETY: see `memchr_sse2`.
    unsafe {
        let pa = _mm_set1_epi8(a as i8);
        let pb = _mm_set1_epi8(b as i8);
        let mut i = 0usize;
        while i + 16 <= haystack.len() {
            let chunk = _mm_loadu_si128(haystack.as_ptr().add(i).cast());
            let hits = _mm_or_si128(_mm_cmpeq_epi8(chunk, pa), _mm_cmpeq_epi8(chunk, pb));
            let mask = _mm_movemask_epi8(hits);
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
        haystack[i..].iter().position(|&c| c == a || c == b).map(|p| i + p)
    }
}

/// Portable word-at-a-time fallback (Mycroft's "has zero byte" trick).
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn memchr_swar(needle: u8, haystack: &[u8]) -> Option<usize> {
    const LO: usize = usize::from_ne_bytes([0x01; std::mem::size_of::<usize>()]);
    const HI: usize = usize::from_ne_bytes([0x80; std::mem::size_of::<usize>()]);
    let word = usize::from_ne_bytes([needle; std::mem::size_of::<usize>()]);
    let step = std::mem::size_of::<usize>();
    let mut i = 0usize;
    while i + step <= haystack.len() {
        let chunk = usize::from_ne_bytes(haystack[i..i + step].try_into().unwrap());
        let x = chunk ^ word;
        if x.wrapping_sub(LO) & !x & HI != 0 {
            // A matching byte is in this word; pin it down bytewise.
            return haystack[i..i + step].iter().position(|&c| c == needle).map(|p| i + p);
        }
        i += step;
    }
    haystack[i..].iter().position(|&c| c == needle).map(|p| i + p)
}

/// Finds the first occurrence of `needle` (non-empty) in `haystack`:
/// SIMD scan for the first byte, then a direct comparison of the rest.
#[inline]
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    debug_assert!(!needle.is_empty());
    let first = needle[0];
    let mut base = 0usize;
    while base + needle.len() <= haystack.len() {
        let i = base + memchr(first, &haystack[base..=haystack.len() - needle.len()])?;
        if haystack[i..i + needle.len()] == *needle {
            return Some(i);
        }
        base = i + 1;
    }
    None
}

/// ASCII-case-insensitive [`find`] for an already-lowercase non-empty
/// needle: SIMD scan for either case of the first byte, then one
/// `eq_ignore_ascii_case` confirmation.
#[inline]
pub fn find_ignore_ascii_case(haystack: &[u8], needle_lower: &[u8]) -> Option<usize> {
    debug_assert!(!needle_lower.is_empty());
    let lo = needle_lower[0];
    let up = lo.to_ascii_uppercase();
    let mut base = 0usize;
    while base + needle_lower.len() <= haystack.len() {
        let window = &haystack[base..=haystack.len() - needle_lower.len()];
        let i = base
            + if lo == up { memchr(lo, window)? } else { memchr2(lo, up, window)? };
        if haystack[i..i + needle_lower.len()].eq_ignore_ascii_case(needle_lower) {
            return Some(i);
        }
        base = i + 1;
    }
    None
}

/// Finds the `\r\n\r\n` head terminator: the index one past the blank
/// line. Scans for `\r` and confirms the 4-byte sequence — head bytes
/// are overwhelmingly non-`\r`, so nearly every position is skipped 16
/// at a time.
#[inline]
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    find(buf, b"\r\n\r\n").map(|p| p + 4)
}

/// Finds the next `\r\n` at or after the start of `buf`.
#[inline]
pub fn find_crlf(buf: &[u8]) -> Option<usize> {
    find(buf, b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memchr_matches_scalar_on_all_offsets() {
        // Cross the 16-byte boundary in every phase so both the SIMD
        // body and the scalar tail are exercised.
        for len in 0..64 {
            let buf: Vec<u8> = (0..len as u8).map(|b| b % 7).collect();
            for needle in 0..8u8 {
                assert_eq!(
                    memchr(needle, &buf),
                    buf.iter().position(|&c| c == needle),
                    "len {len} needle {needle}"
                );
            }
        }
    }

    #[test]
    fn memchr2_matches_scalar() {
        for len in 0..48 {
            let buf: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(
                memchr2(b'\r', b':', &buf),
                buf.iter().position(|&c| c == b'\r' || c == b':')
            );
        }
    }

    #[test]
    fn find_locates_subslices() {
        let hay = b"abcXabcabYabcab\r\n\r\ntail";
        assert_eq!(find(hay, b"abcab"), Some(4));
        assert_eq!(find(hay, b"\r\n\r\n"), Some(15));
        assert_eq!(find(hay, b"zzz"), None);
        assert_eq!(find(b"ab", b"abc"), None);
        assert_eq!(find(b"abc", b"abc"), Some(0));
    }

    #[test]
    fn find_handles_repeated_first_bytes() {
        // First-byte hits that fail confirmation must not skip matches.
        let hay = b"aaaaaaaaaaaaaaaaaaaaaaab";
        assert_eq!(find(hay, b"aab"), Some(21));
    }

    #[test]
    fn find_ci_matches_any_case() {
        let hay = b"...Location: x ...LOCATION: y";
        assert_eq!(find_ignore_ascii_case(hay, b"location"), Some(3));
        assert_eq!(find_ignore_ascii_case(&hay[4..], b"location"), Some(14));
        assert_eq!(find_ignore_ascii_case(hay, b"refresh"), None);
        // Non-alphabetic first byte (single-case path).
        assert_eq!(find_ignore_ascii_case(hay, b":"), Some(11));
    }

    #[test]
    fn head_end_and_crlf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\nbody"), Some(27));
        assert_eq!(find_head_end(b"no terminator"), None);
        assert_eq!(find_crlf(b"abc\r\ndef"), Some(3));
        assert_eq!(find_crlf(b"abc\rdef"), None);
    }
}
