//! Minimal pcapng (next-generation capture) support.
//!
//! Wireshark writes pcapng by default, so a deployable replay path must
//! read it. This module implements the block structure needed for packet
//! replay — Section Header (byte-order detection), Interface Description
//! (timestamp resolution), Enhanced and Simple Packet Blocks — and a
//! writer sufficient for round-trip tests. Unknown block types are
//! skipped, as the specification requires.
//!
//! Use [`crate::capture::read_packets`] to accept either classic pcap or
//! pcapng transparently.

use crate::arena::PacketSpan;
use crate::ingest::IngestReport;
use crate::pcap::Packet;
use crate::{Error, Result};
use std::ops::Range;

/// Block type of the Section Header Block.
pub const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Byte-order magic inside the SHB.
pub const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
/// Interface Description Block.
pub const IDB_TYPE: u32 = 0x0000_0001;
/// Simple Packet Block.
pub const SPB_TYPE: u32 = 0x0000_0003;
/// Enhanced Packet Block.
pub const EPB_TYPE: u32 = 0x0000_0006;

fn syntax(msg: &str) -> Error {
    Error::HttpSyntax(format!("pcapng: {msg}"))
}

struct Cursor<'a> {
    data: &'a [u8],

    big_endian: bool,
}

impl<'a> Cursor<'a> {
    fn u32_at(&self, offset: usize) -> Result<u32> {
        let b = self
            .data
            .get(offset..offset + 4)
            .ok_or_else(|| syntax("truncated block"))?;
        let v = [b[0], b[1], b[2], b[3]];
        Ok(if self.big_endian { u32::from_be_bytes(v) } else { u32::from_le_bytes(v) })
    }
}

/// Whether `bytes` starts with a pcapng Section Header Block.
pub fn is_pcapng(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == SHB_TYPE.to_le_bytes()
}

/// Detects the byte order from the SHB magic, or errors on garbage.
fn byte_order(bytes: &[u8]) -> Result<bool> {
    if bytes.len() < 12 || !is_pcapng(bytes) {
        return Err(syntax("missing section header block"));
    }
    // Byte order from the SHB magic (block type 0x0A0D0D0A reads the same
    // in both orders; the magic does not).
    let magic_le = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    match magic_le {
        BYTE_ORDER_MAGIC => Ok(false),
        m if m.swap_bytes() == BYTE_ORDER_MAGIC => Ok(true),
        _ => Err(syntax("bad byte-order magic")),
    }
}

/// Parses one block at `pos`, emitting any packet as a `(ts, range)`
/// pair into `emit` and updating `tsresol` on interface blocks.
///
/// Returns `Ok(Some(next_pos))` on success, `Ok(None)` when the
/// remaining bytes are a truncated final block (the declared block
/// length runs past the end of the input), and a structural error for
/// in-place corruption (bad length fields, trailer mismatch).
///
/// Invariant relied on by the lenient walker: `emit` is called only
/// after every validation for the block has passed, so an `Err` return
/// implies nothing was emitted for this block.
fn parse_block(
    cur: &Cursor<'_>,
    bytes: &[u8],
    pos: usize,
    tsresol: &mut Vec<f64>,
    emit: &mut impl FnMut(f64, Range<usize>),
) -> Result<Option<usize>> {
    let block_type = cur.u32_at(pos)?;
    let total_len = cur.u32_at(pos + 4)? as usize;
    if total_len < 12 || !total_len.is_multiple_of(4) {
        return Err(syntax("bad block length"));
    }
    if pos + total_len > bytes.len() {
        return Ok(None); // truncated final block
    }
    let trailer = cur.u32_at(pos + total_len - 4)? as usize;
    if trailer != total_len {
        return Err(syntax("block length trailer mismatch"));
    }
    let body_len = total_len - 12;
    match block_type {
        SHB_TYPE => {
            // New section: interfaces reset.
            tsresol.clear();
        }
        IDB_TYPE => {
            tsresol.push(parse_idb_tsresol(cur, pos + 8, body_len)?);
        }
        EPB_TYPE => {
            if body_len < 20 {
                return Err(syntax("truncated enhanced packet block"));
            }
            let iface = cur.u32_at(pos + 8)? as usize;
            let ts_high = cur.u32_at(pos + 12)? as u64;
            let ts_low = cur.u32_at(pos + 16)? as u64;
            let caplen = cur.u32_at(pos + 20)? as usize;
            if bytes.get(pos + 28..pos + 28 + caplen).is_none() {
                return Err(syntax("truncated packet data"));
            }
            let resol = tsresol.get(iface).copied().unwrap_or(1e6);
            let ticks = (ts_high << 32) | ts_low;
            emit(ticks as f64 / resol, pos + 28..pos + 28 + caplen);
        }
        SPB_TYPE => {
            if body_len < 4 {
                return Err(syntax("truncated simple packet block"));
            }
            let orig_len = cur.u32_at(pos + 8)? as usize;
            let caplen = orig_len.min(body_len - 4);
            emit(0.0, pos + 12..pos + 12 + caplen);
        }
        _ => {} // options, name resolution, statistics… skipped
    }
    Ok(Some(pos + total_len))
}

/// Reads every packet from a pcapng byte stream.
///
/// Timestamps honour each interface's `if_tsresol` option (default
/// microseconds). Unknown blocks are skipped; Simple Packet Blocks carry
/// no timestamp and are emitted with `ts = 0.0`. A capture whose final
/// block is cut short (live rotation, interrupted copy) yields every
/// packet read before the truncation point.
///
/// # Errors
///
/// Returns an error on a malformed section header, inconsistent block
/// lengths, or a corrupt length trailer mid-file.
pub fn read_packets(bytes: &[u8]) -> Result<Vec<Packet>> {
    let big_endian = byte_order(bytes)?;
    let cur = Cursor { data: bytes, big_endian };
    let mut pos = 0usize;
    let mut packets = Vec::new();
    // Per-interface timestamp resolution (ticks per second).
    let mut tsresol: Vec<f64> = Vec::new();
    while pos + 12 <= bytes.len() {
        let emit = &mut |ts, range: Range<usize>| {
            packets.push(Packet::new(ts, bytes[range].to_vec()));
        };
        match parse_block(&cur, bytes, pos, &mut tsresol, emit)? {
            Some(next) => pos = next,
            None => break, // truncated final block: keep what we have
        }
    }
    Ok(packets)
}

/// Reads every salvageable packet from pcapng bytes, never failing.
///
/// Unlike classic pcap, pcapng blocks carry their own type and length
/// framing, so decoding can resynchronise after a corrupt block: the
/// scanner searches forward for the next offset that looks like a valid
/// block (known type, sane length, matching trailer) and continues
/// there. Dropped blocks and skipped bytes are counted in `report`.
pub fn read_packets_lenient(bytes: &[u8], report: &mut IngestReport) -> Vec<Packet> {
    let mut packets = Vec::new();
    walk_blocks_lenient(bytes, report, |ts, range| {
        packets.push(Packet::new(ts, bytes[range].to_vec()));
    });
    packets
}

/// Span-based sibling of [`read_packets_lenient`]: identical walk and
/// accounting, but each salvaged packet is appended to `out` as a
/// `(ts, range)` span into `bytes` instead of a copied buffer.
pub fn read_packet_spans_lenient(
    bytes: &[u8],
    report: &mut IngestReport,
    out: &mut Vec<PacketSpan>,
) {
    walk_blocks_lenient(bytes, report, |ts, range| out.push(PacketSpan { ts, range }));
}

/// The lenient block walk shared by the copying and span readers: one
/// implementation of salvage, resync, and accounting, parameterised only
/// by what to do with each recovered packet's `(ts, range)`.
fn walk_blocks_lenient(
    bytes: &[u8],
    report: &mut IngestReport,
    mut emit: impl FnMut(f64, Range<usize>),
) {
    let Ok(big_endian) = byte_order(bytes) else {
        report.bytes_skipped += bytes.len() as u64;
        return;
    };
    let cur = Cursor { data: bytes, big_endian };
    let mut pos = 0usize;
    let mut tsresol: Vec<f64> = Vec::new();
    while pos + 12 <= bytes.len() {
        let mut emitted = 0u64;
        let sink = &mut |ts, range| {
            emitted += 1;
            emit(ts, range);
        };
        // A failed block emits nothing (see `parse_block`), so the error
        // path needs no rollback of already-emitted packets.
        match parse_block(&cur, bytes, pos, &mut tsresol, sink) {
            Ok(Some(next)) => {
                report.packets_read += emitted;
                pos = next;
            }
            Ok(None) => {
                report.records_dropped += 1;
                report.bytes_skipped += (bytes.len() - pos) as u64;
                report.capture_truncated = true;
                return;
            }
            Err(_) => {
                report.records_dropped += 1;
                match resync(&cur, bytes, pos + 1) {
                    Some(next) => {
                        report.bytes_skipped += (next - pos) as u64;
                        pos = next;
                    }
                    None => {
                        report.bytes_skipped += (bytes.len() - pos) as u64;
                        return;
                    }
                }
            }
        }
    }
    if pos < bytes.len() {
        report.bytes_skipped += (bytes.len() - pos) as u64;
        report.capture_truncated = true;
    }
}

/// Finds the next plausible block start at or after `from`: a known
/// block type whose declared length is sane and whose length trailer
/// matches. Returns `None` when no such offset exists.
fn resync(cur: &Cursor<'_>, bytes: &[u8], from: usize) -> Option<usize> {
    for q in from..bytes.len().saturating_sub(12) {
        let Ok(block_type) = cur.u32_at(q) else { continue };
        if !matches!(block_type, SHB_TYPE | IDB_TYPE | EPB_TYPE | SPB_TYPE) {
            continue;
        }
        let Ok(total_len) = cur.u32_at(q + 4) else { continue };
        let total_len = total_len as usize;
        if total_len < 12 || !total_len.is_multiple_of(4) || q + total_len > bytes.len() {
            continue;
        }
        if cur.u32_at(q + total_len - 4).ok()? as usize != total_len {
            continue;
        }
        return Some(q);
    }
    None
}

/// Extracts `if_tsresol` (option 9) from an IDB, returning ticks/second.
fn parse_idb_tsresol(cur: &Cursor<'_>, body_start: usize, body_len: usize) -> Result<f64> {
    // IDB body: linktype u16, reserved u16, snaplen u32, then options.
    let mut opt = body_start + 8;
    let end = body_start + body_len;
    while opt + 4 <= end {
        let code = cur.u32_at(opt)? & 0xffff;
        let len = ((cur.u32_at(opt)? >> 16) & 0xffff) as usize;
        // Careful: option code/length are two u16s; endianness handled by
        // reading the combined u32 above in file order.
        let (code, len) = if cur.big_endian {
            ((cur.u32_at(opt)? >> 16) & 0xffff, (cur.u32_at(opt)? & 0xffff) as usize)
        } else {
            (code, len)
        };
        if code == 0 {
            break; // opt_endofopt
        }
        if code == 9 && len >= 1 {
            let raw = *cur.data.get(opt + 4).ok_or_else(|| syntax("truncated option"))?;
            return Ok(if raw & 0x80 != 0 {
                2f64.powi((raw & 0x7f) as i32)
            } else {
                10f64.powi(raw as i32)
            });
        }
        opt += 4 + len.div_ceil(4) * 4;
    }
    Ok(1e6)
}

/// Writes packets as a minimal little-endian pcapng stream (one section,
/// one Ethernet interface with microsecond timestamps, one EPB per
/// packet). Sufficient for interchange and round-trip testing.
pub fn write_packets(packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::new();
    // SHB: type, len=28, magic, version 1.0, section length -1, trailer.
    out.extend_from_slice(&SHB_TYPE.to_le_bytes());
    out.extend_from_slice(&28u32.to_le_bytes());
    out.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&u64::MAX.to_le_bytes());
    out.extend_from_slice(&28u32.to_le_bytes());
    // IDB: linktype 1 (ethernet), snaplen 0 (no limit), no options.
    out.extend_from_slice(&IDB_TYPE.to_le_bytes());
    out.extend_from_slice(&20u32.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // linktype
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&0u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&20u32.to_le_bytes());
    for p in packets {
        let caplen = p.data.len();
        let padded = caplen.div_ceil(4) * 4;
        let total = 32 + padded;
        let ticks = (p.ts * 1e6).round() as u64;
        out.extend_from_slice(&EPB_TYPE.to_le_bytes());
        out.extend_from_slice(&(total as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // interface 0
        out.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
        out.extend_from_slice(&(ticks as u32).to_le_bytes());
        out.extend_from_slice(&(caplen as u32).to_le_bytes());
        out.extend_from_slice(&(caplen as u32).to_le_bytes());
        out.extend_from_slice(&p.data);
        out.resize(out.len() + (padded - caplen), 0);
        out.extend_from_slice(&(total as u32).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data_and_timestamps() {
        let packets = vec![
            Packet::new(1.5, vec![1, 2, 3]),
            Packet::new(1_400_000_000.000001, vec![0xde, 0xad, 0xbe, 0xef, 0x01]),
            Packet::new(0.0, vec![]),
        ];
        let bytes = write_packets(&packets);
        assert!(is_pcapng(&bytes));
        let got = read_packets(&bytes).unwrap();
        assert_eq!(got.len(), 3);
        for (a, b) in packets.iter().zip(&got) {
            assert_eq!(a.data, b.data);
            assert!((a.ts - b.ts).abs() < 1e-5, "{} vs {}", a.ts, b.ts);
        }
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut bytes = write_packets(&[Packet::new(1.0, vec![9, 9])]);
        // Append a Name Resolution Block (type 4) with empty body.
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&12u32.to_le_bytes());
        bytes.extend_from_slice(&12u32.to_le_bytes());
        // And another packet after it.
        let tail = write_packets(&[Packet::new(2.0, vec![7])]);
        bytes.extend_from_slice(&tail[28 + 20..]); // skip SHB+IDB of tail
        let got = read_packets(&bytes).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].data, vec![7]);
    }

    #[test]
    fn rejects_classic_pcap_and_garbage() {
        assert!(read_packets(&nettrace_pcap_magic()).is_err());
        assert!(read_packets(b"garbage").is_err());
        assert!(!is_pcapng(&nettrace_pcap_magic()));
    }

    fn nettrace_pcap_magic() -> Vec<u8> {
        let mut v = crate::pcap::MAGIC_USEC.to_le_bytes().to_vec();
        v.extend_from_slice(&[0u8; 20]);
        v
    }

    #[test]
    fn length_trailer_mismatch_detected() {
        let mut bytes = write_packets(&[Packet::new(1.0, vec![1])]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the trailer
        assert!(read_packets(&bytes).is_err());
    }

    #[test]
    fn truncated_final_block_yields_prefix() {
        let bytes = write_packets(&[
            Packet::new(1.0, vec![1, 2, 3, 4, 5]),
            Packet::new(2.0, vec![6, 7, 8]),
        ]);
        // Chop into the final EPB: the first packet must survive.
        let got = read_packets(&bytes[..bytes.len() - 6]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn lenient_matches_strict_on_clean_capture() {
        let packets =
            vec![Packet::new(1.5, vec![1, 2, 3]), Packet::new(2.0, vec![9; 100])];
        let bytes = write_packets(&packets);
        let strict = read_packets(&bytes).unwrap();
        let mut report = IngestReport::new();
        let lenient = read_packets_lenient(&bytes, &mut report);
        assert_eq!(strict, lenient);
        assert_eq!(report.packets_read, 2);
        assert!(!report.has_loss());
    }

    #[test]
    fn lenient_resyncs_past_corrupt_block() {
        let packets = vec![
            Packet::new(1.0, vec![0xaa; 16]),
            Packet::new(2.0, vec![0xbb; 16]),
            Packet::new(3.0, vec![0xcc; 16]),
        ];
        let mut bytes = write_packets(&packets);
        // Corrupt the second EPB's trailer so strict parsing fails there.
        let epb_len = 32 + 16;
        let second_epb_start = 28 + 20 + epb_len;
        let trailer_at = second_epb_start + epb_len - 4;
        bytes[trailer_at] ^= 0xff;
        assert!(read_packets(&bytes).is_err(), "strict must still fail");
        let mut report = IngestReport::new();
        let got = read_packets_lenient(&bytes, &mut report);
        // First and third packets recovered; the corrupt middle dropped.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].data, vec![0xaa; 16]);
        assert_eq!(got[1].data, vec![0xcc; 16]);
        assert_eq!(report.records_dropped, 1);
        assert!(report.bytes_skipped > 0);
    }

    #[test]
    fn lenient_counts_truncated_tail() {
        let bytes = write_packets(&[
            Packet::new(1.0, vec![1, 2, 3, 4]),
            Packet::new(2.0, vec![5, 6, 7, 8]),
        ]);
        let cut = &bytes[..bytes.len() - 6];
        let mut report = IngestReport::new();
        let got = read_packets_lenient(cut, &mut report);
        assert_eq!(got.len(), 1);
        assert_eq!(report.packets_read, 1);
        assert!(report.capture_truncated);
        assert_eq!(report.records_dropped, 1);
    }

    #[test]
    fn lenient_never_returns_more_than_available() {
        let mut report = IngestReport::new();
        assert!(read_packets_lenient(b"garbage", &mut report).is_empty());
        assert_eq!(report.bytes_skipped, 7);
    }

    #[test]
    fn span_read_matches_copying_read_including_faults() {
        let packets = vec![
            Packet::new(1.0, vec![0xaa; 16]),
            Packet::new(2.0, vec![0xbb; 16]),
            Packet::new(3.0, vec![0xcc; 16]),
        ];
        let mut corrupt = write_packets(&packets);
        // Corrupt the second EPB's trailer (forces a resync) and leave a
        // clean copy too.
        let epb_len = 32 + 16;
        let trailer_at = 28 + 20 + epb_len + epb_len - 4;
        corrupt[trailer_at] ^= 0xff;
        let clean = write_packets(&packets);
        let truncated = clean[..clean.len() - 6].to_vec();
        for bytes in [clean, corrupt, truncated, b"garbage".to_vec()] {
            let mut copy_report = IngestReport::new();
            let copied = read_packets_lenient(&bytes, &mut copy_report);
            let mut span_report = IngestReport::new();
            let mut spans = Vec::new();
            read_packet_spans_lenient(&bytes, &mut span_report, &mut spans);
            assert_eq!(copy_report, span_report);
            assert_eq!(copied.len(), spans.len());
            for (p, s) in copied.iter().zip(&spans) {
                assert_eq!(p.ts, s.ts);
                assert_eq!(p.data.as_slice(), s.bytes(&bytes));
            }
        }
    }
}
