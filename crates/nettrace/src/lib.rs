//! Packet-capture substrate for the DynaMiner reproduction.
//!
//! This crate implements, from scratch, everything needed to go from raw
//! packet-capture bytes to paired HTTP transactions:
//!
//! * [`pcap`] — reading and writing the classic libpcap file format,
//! * [`ether`], [`ipv4`], [`tcp`] — parsing and building the packet layers,
//! * [`reassembly`] — ordering TCP segments into per-direction byte streams,
//! * [`http`] — incremental HTTP/1.1 request/response parsing, including
//!   `Content-Length` and chunked bodies,
//! * [`transaction`] — pairing requests with responses into
//!   [`HttpTransaction`]s, the unit every downstream DynaMiner component
//!   consumes,
//! * [`payload`] — payload-type classification from URI extension,
//!   `Content-Type`, and magic bytes, including the 45 ransomware file
//!   extensions the paper matches against,
//! * [`ingest`] — per-layer health counters ([`IngestReport`]) for the
//!   lenient decode mode, which salvages hostile or damaged captures
//!   instead of failing on the first malformed byte.
//!
//! # Example
//!
//! ```
//! use nettrace::pcap::{Packet, PcapReader, PcapWriter};
//!
//! # fn main() -> Result<(), nettrace::Error> {
//! let mut buf = Vec::new();
//! let mut writer = PcapWriter::new(&mut buf)?;
//! writer.write_packet(&Packet::new(1.5, vec![0xde, 0xad]))?;
//!
//! let mut reader = PcapReader::new(buf.as_slice())?;
//! let pkt = reader.next_packet()?.expect("one packet");
//! assert_eq!(pkt.data, [0xde, 0xad]);
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod base64;
pub mod capture;
pub mod ether;
pub mod flate;
pub mod http;
pub mod ingest;
pub mod ipv4;
pub mod metrics;
pub mod payload;
pub mod pcap;
pub mod pcapng;
pub mod proxyproto;
pub mod reassembly;
pub mod scan;
pub mod source;
pub mod tcp;
pub mod transaction;
pub mod wiretap;

mod error;

pub use error::Error;
pub use ingest::IngestReport;
pub use transaction::{assign_seq, HttpTransaction, SpanPipeline, TransactionExtractor};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
