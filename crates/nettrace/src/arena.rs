//! Shared capture arena for the zero-copy ingest pipeline.
//!
//! A capture file is loaded (or mapped) into memory exactly once; every
//! later stage — packet framing, TCP reassembly, HTTP parsing — refers
//! to it by [`PacketSpan`] byte ranges instead of copying payload bytes
//! forward. The arena is refcounted (`Arc`) so a consumer that outlives
//! the ingest call (streamd handoff, deferred forensics) can keep the
//! backing buffer alive without copying it.

use std::ops::Range;
use std::sync::Arc;

/// One capture file's bytes, shared by reference between pipeline stages.
#[derive(Debug, Clone)]
pub struct CaptureArena {
    bytes: Arc<[u8]>,
}

impl CaptureArena {
    /// Wraps an owned capture buffer without copying it.
    pub fn new(bytes: Vec<u8>) -> Self {
        CaptureArena { bytes: bytes.into() }
    }

    /// Copies a borrowed capture into a fresh arena (the one deliberate
    /// copy for callers that only hold a slice).
    pub fn from_slice(bytes: &[u8]) -> Self {
        CaptureArena { bytes: Arc::from(bytes) }
    }

    /// The full capture bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Capture length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the capture is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl std::ops::Deref for CaptureArena {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for CaptureArena {
    fn from(bytes: Vec<u8>) -> Self {
        CaptureArena::new(bytes)
    }
}

/// One captured packet as a timestamped range into a [`CaptureArena`].
///
/// The range covers the captured link-layer frame bytes (what
/// [`crate::pcap::Packet::data`] would own on the copying path).
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSpan {
    /// Capture timestamp (seconds since epoch).
    pub ts: f64,
    /// Frame bytes as a range into the arena.
    pub range: Range<usize>,
}

impl PacketSpan {
    /// The frame bytes this span covers.
    #[inline]
    pub fn bytes<'a>(&self, arena: &'a [u8]) -> &'a [u8] {
        &arena[self.range.clone()]
    }
}

/// Position of the subslice `sub` within its parent slice `base`, as a
/// byte range into `base`.
///
/// This is how the span pipeline recovers arena offsets from the
/// existing borrow-based Ethernet/IPv4/TCP parsers: parse a frame
/// borrowed from the arena, then map the payload slice back to arena
/// coordinates without re-deriving header lengths.
///
/// # Panics
///
/// Panics (debug assertion) when `sub` is not contained in `base`.
#[inline]
pub fn subslice_range(base: &[u8], sub: &[u8]) -> Range<usize> {
    let base_start = base.as_ptr() as usize;
    let sub_start = sub.as_ptr() as usize;
    debug_assert!(
        sub_start >= base_start && sub_start + sub.len() <= base_start + base.len(),
        "subslice_range: sub is not within base"
    );
    let start = sub_start - base_start;
    start..start + sub.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_shares_without_copy() {
        let arena = CaptureArena::new(vec![1, 2, 3, 4]);
        let clone = arena.clone();
        assert_eq!(arena.as_slice(), clone.as_slice());
        assert_eq!(arena.as_slice().as_ptr(), clone.as_slice().as_ptr(), "refcounted, not copied");
    }

    #[test]
    fn span_resolves_bytes() {
        let arena = CaptureArena::new(vec![0, 1, 2, 3, 4, 5]);
        let span = PacketSpan { ts: 1.5, range: 2..5 };
        assert_eq!(span.bytes(&arena), &[2, 3, 4]);
    }

    #[test]
    fn subslice_range_recovers_offsets() {
        let base = [0u8; 32];
        assert_eq!(subslice_range(&base, &base[5..17]), 5..17);
        assert_eq!(subslice_range(&base, &base[..0]), 0..0);
        assert_eq!(subslice_range(&base, &base[32..]), 32..32);
    }
}
