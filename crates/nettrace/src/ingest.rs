//! Ingest-health accounting for lenient (graceful-degradation) decoding.
//!
//! Real-world captures are hostile inputs: live rotation truncates files
//! mid-record, faulty taps flip bytes, middleboxes mangle TCP, and
//! servers emit broken chunked framing or corrupt gzip. The strict
//! pipeline fails the whole capture on the first malformed byte, which
//! is the right default for unit tests but wrong for forensic replay —
//! an analyst wants every conversation that *can* be recovered, plus an
//! honest account of what was lost.
//!
//! [`IngestReport`] is that account. Every lenient entry point
//! ([`crate::capture::read_packets_lenient`],
//! [`crate::TransactionExtractor::extract_lenient`]) threads one through
//! and increments per-layer counters instead of aborting:
//!
//! * **capture layer** — records read vs. dropped, bytes abandoned,
//!   whether the file ended mid-record,
//! * **packet layer** — frames that failed Ethernet/IPv4/TCP decoding,
//!   and well-formed frames that simply are not TCP/IPv4,
//! * **stream layer** — reassembled streams salvaged after a mid-stream
//!   parse error, discarded entirely, or skipped as non-HTTP,
//! * **HTTP layer** — transactions recovered, gzip and chunked-framing
//!   decode failures.

use serde::{Deserialize, Serialize};

/// Per-layer counters describing what one lenient ingest run recovered
/// and what it dropped.
///
/// All counters are cumulative: the same report can be threaded through
/// several captures and merged with [`IngestReport::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Capture records successfully decoded into packets.
    pub packets_read: u64,
    /// Capture records skipped or abandoned (corrupt header, oversized
    /// capture length, truncation mid-record).
    pub records_dropped: u64,
    /// Capture bytes abandoned without being decoded.
    pub bytes_skipped: u64,
    /// Whether the capture ended in the middle of a record or block.
    pub capture_truncated: bool,
    /// Packets that failed Ethernet/IPv4/TCP decoding.
    pub packets_dropped_decode: u64,
    /// Well-formed packets that are not IPv4/TCP (ARP, UDP, IPv6, …).
    pub packets_non_tcp: u64,
    /// Reassembled unidirectional streams seen in total.
    pub streams_total: u64,
    /// Streams that hit a mid-stream HTTP parse error but yielded at
    /// least one message before it (the parseable prefix is kept).
    pub streams_salvaged: u64,
    /// Streams quarantined without recovering a single message: either
    /// malformed from the first byte, or an orphan HTTP response whose
    /// request direction was never captured.
    pub streams_discarded: u64,
    /// Streams carrying something other than HTTP (TLS, SSH, …),
    /// counted instead of silently dropped.
    pub streams_skipped_non_http: u64,
    /// Sequence-number discontinuities (lost segments) skipped during
    /// reassembly: each is a point where later bytes were appended
    /// directly after earlier ones instead of stalling the stream.
    pub reassembly_gaps: u64,
    /// HTTP transactions recovered end-to-end.
    pub transactions_recovered: u64,
    /// Response bodies whose gzip content encoding failed to decode
    /// (the raw bytes are kept).
    pub gzip_failures: u64,
    /// Response bodies whose deflate content encoding (zlib or raw)
    /// failed to decode (the raw bytes are kept).
    pub deflate_failures: u64,
    /// Chunked transfer framing errors (the stream prefix is kept).
    pub chunked_failures: u64,
    /// Response bodies whose decoded size would exceed the expansion
    /// cap ([`crate::transaction::MAX_DECODED_BODY_BYTES`]) — the
    /// zip-bomb guard. The still-encoded wire bytes are kept.
    pub decode_cap_exceeded: u64,
}

impl IngestReport {
    /// Creates an all-zero report.
    pub fn new() -> Self {
        IngestReport::default()
    }

    /// Accumulates `other` into `self` (counter-wise sum; the truncation
    /// flag is OR-ed).
    pub fn merge(&mut self, other: &IngestReport) {
        self.packets_read += other.packets_read;
        self.records_dropped += other.records_dropped;
        self.bytes_skipped += other.bytes_skipped;
        self.capture_truncated |= other.capture_truncated;
        self.packets_dropped_decode += other.packets_dropped_decode;
        self.packets_non_tcp += other.packets_non_tcp;
        self.streams_total += other.streams_total;
        self.streams_salvaged += other.streams_salvaged;
        self.streams_discarded += other.streams_discarded;
        self.streams_skipped_non_http += other.streams_skipped_non_http;
        self.reassembly_gaps += other.reassembly_gaps;
        self.transactions_recovered += other.transactions_recovered;
        self.gzip_failures += other.gzip_failures;
        self.deflate_failures += other.deflate_failures;
        self.chunked_failures += other.chunked_failures;
        self.decode_cap_exceeded += other.decode_cap_exceeded;
    }

    /// Whether any layer dropped, skipped, or salvaged anything — i.e.
    /// whether the capture decoded less than perfectly.
    pub fn has_loss(&self) -> bool {
        self.records_dropped > 0
            || self.bytes_skipped > 0
            || self.capture_truncated
            || self.packets_dropped_decode > 0
            || self.streams_salvaged > 0
            || self.streams_discarded > 0
            || self.reassembly_gaps > 0
            || self.gzip_failures > 0
            || self.deflate_failures > 0
            || self.chunked_failures > 0
            || self.decode_cap_exceeded > 0
    }
}

impl std::fmt::Display for IngestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "capture: {} packets read, {} records dropped, {} bytes skipped{}; \
             decode: {} undecodable, {} non-tcp; \
             streams: {} total, {} salvaged, {} discarded, {} non-http, {} gaps; \
             http: {} transactions, {} gzip failures, {} deflate failures, \
             {} chunked failures, {} over decode cap",
            self.packets_read,
            self.records_dropped,
            self.bytes_skipped,
            if self.capture_truncated { " (truncated)" } else { "" },
            self.packets_dropped_decode,
            self.packets_non_tcp,
            self.streams_total,
            self.streams_salvaged,
            self.streams_discarded,
            self.streams_skipped_non_http,
            self.reassembly_gaps,
            self.transactions_recovered,
            self.gzip_failures,
            self.deflate_failures,
            self.chunked_failures,
            self.decode_cap_exceeded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_ors_truncation() {
        let mut a = IngestReport { packets_read: 3, gzip_failures: 1, ..IngestReport::new() };
        let b = IngestReport {
            packets_read: 2,
            capture_truncated: true,
            streams_salvaged: 4,
            ..IngestReport::new()
        };
        a.merge(&b);
        assert_eq!(a.packets_read, 5);
        assert_eq!(a.gzip_failures, 1);
        assert_eq!(a.streams_salvaged, 4);
        assert!(a.capture_truncated);
    }

    #[test]
    fn loss_detection() {
        assert!(!IngestReport::new().has_loss());
        assert!(!IngestReport { packets_read: 10, streams_total: 2, ..IngestReport::new() }
            .has_loss());
        assert!(IngestReport { records_dropped: 1, ..IngestReport::new() }.has_loss());
        assert!(IngestReport { deflate_failures: 1, ..IngestReport::new() }.has_loss());
        assert!(IngestReport { chunked_failures: 1, ..IngestReport::new() }.has_loss());
        assert!(IngestReport { decode_cap_exceeded: 1, ..IngestReport::new() }.has_loss());
    }

    #[test]
    fn display_mentions_every_layer() {
        let r = format!("{}", IngestReport::new());
        for word in ["capture", "decode", "streams", "http"] {
            assert!(r.contains(word), "{r}");
        }
    }

    #[test]
    fn report_round_trips_through_value() {
        let r = IngestReport { packets_read: 7, capture_truncated: true, ..IngestReport::new() };
        let v = serde::to_value(&r).unwrap();
        let back: IngestReport = serde::from_value(v).unwrap();
        assert_eq!(back, r);
    }
}
