//! Reading and writing the classic libpcap capture format.
//!
//! Only the classic (non-ng) format is implemented: a 24-byte global header
//! followed by `(16-byte record header, packet bytes)` pairs. Both the
//! little-endian and big-endian magic variants are accepted on read; files
//! are always written little-endian with microsecond timestamps.

use std::io::{Read, Write};

use crate::arena::PacketSpan;
use crate::ingest::IngestReport;
use crate::{Error, Result};

/// Little-endian magic number for microsecond-resolution captures.
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Byte-swapped magic (capture written on an opposite-endian machine).
pub const MAGIC_USEC_SWAPPED: u32 = 0xd4c3_b2a1;
/// Link type for Ethernet frames (DLT_EN10MB).
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Upper bound on `caplen` that we accept; larger values indicate corruption.
pub const MAX_CAPTURE_LEN: u32 = 1 << 24;

/// A single captured packet: a timestamp plus the captured bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Capture time in seconds since the Unix epoch (microsecond precision).
    pub ts: f64,
    /// Captured bytes, starting at the link layer.
    pub data: Vec<u8>,
}

impl Packet {
    /// Creates a packet from a timestamp and raw bytes.
    pub fn new(ts: f64, data: Vec<u8>) -> Self {
        Packet { ts, data }
    }
}

/// Streaming reader for classic pcap files.
#[derive(Debug)]
pub struct PcapReader<R> {
    inner: R,
    swapped: bool,
    linktype: u32,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadPcapMagic`] when the magic number is not a classic
    /// pcap magic, or [`Error::Io`] when the header cannot be read.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_USEC => false,
            MAGIC_USEC_SWAPPED => true,
            other => return Err(Error::BadPcapMagic(other)),
        };
        let linktype = read_u32(&hdr[20..24], swapped);
        Ok(PcapReader { inner, swapped, linktype })
    }

    /// The link type declared in the global header (1 = Ethernet).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Reads the next packet, or `None` at clean end-of-file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadCaptureLength`] when a record declares a capture
    /// length above [`MAX_CAPTURE_LEN`], or [`Error::Io`] when the file ends
    /// in the middle of a record.
    pub fn next_packet(&mut self) -> Result<Option<Packet>> {
        let mut rec = [0u8; 16];
        match self.inner.read(&mut rec[..1])? {
            0 => return Ok(None),
            _ => self.inner.read_exact(&mut rec[1..])?,
        }
        let ts_sec = read_u32(&rec[0..4], self.swapped);
        let ts_usec = read_u32(&rec[4..8], self.swapped);
        let caplen = read_u32(&rec[8..12], self.swapped);
        if caplen > MAX_CAPTURE_LEN {
            return Err(Error::BadCaptureLength(caplen));
        }
        let mut data = vec![0u8; caplen as usize];
        self.inner.read_exact(&mut data)?;
        let ts = ts_sec as f64 + ts_usec as f64 * 1e-6;
        Ok(Some(Packet { ts, data }))
    }

    /// Drains the remaining packets into a vector.
    ///
    /// A file that ends in the middle of its final record — the normal
    /// shape of a live-rotated or interrupted capture — yields every
    /// packet read up to that point rather than failing the whole
    /// capture. Use [`PcapReader::next_packet`] directly to observe the
    /// truncation as an [`Error::Io`].
    ///
    /// # Errors
    ///
    /// Propagates any non-truncation error from
    /// [`PcapReader::next_packet`] (e.g. [`Error::BadCaptureLength`]).
    pub fn collect_packets(mut self) -> Result<Vec<Packet>> {
        let mut out = Vec::new();
        loop {
            match self.next_packet() {
                Ok(Some(p)) => out.push(p),
                Ok(None) => return Ok(out),
                Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return Ok(out); // truncated final record
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Lenient record walk shared by the copying and span readers: one
/// callback per decodable packet with the record's timestamp and the
/// frame's byte range in `bytes`. Accounting is identical on both paths
/// by construction — this is the single implementation of it.
///
/// Classic pcap has no per-record magic, so decoding cannot resynchronise
/// after a corrupt record: the first unreadable record ends the walk and
/// the remaining bytes are counted as skipped in `report`. Truncated
/// final records (live-rotated captures) are the common benign case and
/// set [`IngestReport::capture_truncated`].
fn walk_records_lenient(
    bytes: &[u8],
    report: &mut IngestReport,
    mut emit: impl FnMut(f64, std::ops::Range<usize>),
) {
    if bytes.len() < 24 {
        report.bytes_skipped += bytes.len() as u64;
        report.capture_truncated = true;
        return;
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let swapped = match magic {
        MAGIC_USEC => false,
        MAGIC_USEC_SWAPPED => true,
        _ => {
            report.bytes_skipped += bytes.len() as u64;
            return;
        }
    };
    let mut pos = 24usize;
    while pos < bytes.len() {
        if pos + 16 > bytes.len() {
            report.records_dropped += 1;
            report.bytes_skipped += (bytes.len() - pos) as u64;
            report.capture_truncated = true;
            break;
        }
        let ts_sec = read_u32(&bytes[pos..pos + 4], swapped);
        let ts_usec = read_u32(&bytes[pos + 4..pos + 8], swapped);
        let caplen = read_u32(&bytes[pos + 8..pos + 12], swapped);
        if caplen > MAX_CAPTURE_LEN {
            // Corrupt length field: everything after it is unframed.
            report.records_dropped += 1;
            report.bytes_skipped += (bytes.len() - pos) as u64;
            break;
        }
        let end = pos + 16 + caplen as usize;
        if end > bytes.len() {
            report.records_dropped += 1;
            report.bytes_skipped += (bytes.len() - pos) as u64;
            report.capture_truncated = true;
            break;
        }
        let ts = ts_sec as f64 + ts_usec as f64 * 1e-6;
        emit(ts, pos + 16..end);
        report.packets_read += 1;
        pos = end;
    }
}

/// Reads every decodable packet from classic pcap bytes, never failing.
/// See `walk_records_lenient` for the degradation rules.
pub fn read_packets_lenient(bytes: &[u8], report: &mut IngestReport) -> Vec<Packet> {
    let mut out = Vec::new();
    walk_records_lenient(bytes, report, |ts, range| {
        out.push(Packet { ts, data: bytes[range].to_vec() });
    });
    out
}

/// Zero-copy variant of [`read_packets_lenient`]: appends one
/// [`PacketSpan`] per decodable packet to `out` instead of copying frame
/// bytes. Spans index into `bytes` (the capture arena). Accounting in
/// `report` is byte-identical to the copying reader.
pub fn read_packet_spans_lenient(
    bytes: &[u8],
    report: &mut IngestReport,
    out: &mut Vec<PacketSpan>,
) {
    walk_records_lenient(bytes, report, |ts, range| out.push(PacketSpan { ts, range }));
}

/// Streaming writer for classic pcap files (little-endian, microseconds).
#[derive(Debug)]
pub struct PcapWriter<W> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header with an Ethernet link type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the header cannot be written.
    pub fn new(inner: W) -> Result<Self> {
        Self::with_linktype(inner, LINKTYPE_ETHERNET)
    }

    /// Writes the global header with an explicit link type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the header cannot be written.
    pub fn with_linktype(mut inner: W, linktype: u32) -> Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
        // thiszone and sigfigs stay zero.
        hdr[16..20].copy_from_slice(&(MAX_CAPTURE_LEN).to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&linktype.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner })
    }

    /// Appends one packet record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadCaptureLength`] when the packet exceeds
    /// [`MAX_CAPTURE_LEN`] bytes, or [`Error::Io`] on write failure.
    pub fn write_packet(&mut self, packet: &Packet) -> Result<()> {
        if packet.data.len() as u64 > MAX_CAPTURE_LEN as u64 {
            return Err(Error::BadCaptureLength(packet.data.len() as u32));
        }
        let ts_sec = packet.ts.floor() as u32;
        let ts_usec = ((packet.ts - ts_sec as f64) * 1e6).round() as u32;
        let len = packet.data.len() as u32;
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&ts_sec.to_le_bytes());
        rec[4..8].copy_from_slice(&ts_usec.to_le_bytes());
        rec[8..12].copy_from_slice(&len.to_le_bytes());
        rec[12..16].copy_from_slice(&len.to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&packet.data)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when flushing fails.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

fn read_u32(b: &[u8], swapped: bool) -> u32 {
    let v = [b[0], b[1], b[2], b[3]];
    if swapped {
        u32::from_be_bytes(v)
    } else {
        u32::from_le_bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: &[Packet]) -> Vec<Packet> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for p in packets {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap();
        PcapReader::new(buf.as_slice()).unwrap().collect_packets().unwrap()
    }

    #[test]
    fn empty_file_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn packets_roundtrip_with_timestamps() {
        let pkts = vec![
            Packet::new(0.0, vec![]),
            Packet::new(1.000001, vec![1, 2, 3]),
            Packet::new(1234567.5, vec![0xff; 1500]),
        ];
        let got = roundtrip(&pkts);
        assert_eq!(got.len(), 3);
        for (a, b) in pkts.iter().zip(&got) {
            assert_eq!(a.data, b.data);
            assert!((a.ts - b.ts).abs() < 1e-5, "ts {} vs {}", a.ts, b.ts);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = vec![0u8; 24];
        buf[0..4].copy_from_slice(&0x1111_2222u32.to_le_bytes());
        match PcapReader::new(buf.as_slice()) {
            Err(Error::BadPcapMagic(m)) => assert_eq!(m, 0x1111_2222),
            other => panic!("expected BadPcapMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_record() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_packet(&Packet::new(1.0, vec![9; 10])).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 4); // chop the packet body
        let mut r = PcapReader::new(buf.as_slice()).unwrap();
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn collect_yields_packets_before_truncated_final_record() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_packet(&Packet::new(1.0, vec![1; 10])).unwrap();
        w.write_packet(&Packet::new(2.0, vec![2; 10])).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 4); // chop the second packet's body
        let got = PcapReader::new(buf.as_slice()).unwrap().collect_packets().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, vec![1; 10]);
    }

    #[test]
    fn lenient_read_counts_truncation() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_packet(&Packet::new(1.0, vec![1; 10])).unwrap();
        w.write_packet(&Packet::new(2.0, vec![2; 10])).unwrap();
        w.finish().unwrap();
        let chopped = buf.len() - 4;
        buf.truncate(chopped);
        let mut report = IngestReport::new();
        let got = read_packets_lenient(&buf, &mut report);
        assert_eq!(got.len(), 1);
        assert_eq!(report.packets_read, 1);
        assert_eq!(report.records_dropped, 1);
        assert_eq!(report.bytes_skipped, 16 + 6); // record header + partial body
        assert!(report.capture_truncated);
    }

    #[test]
    fn lenient_read_matches_strict_on_clean_capture() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for i in 0..5u8 {
            w.write_packet(&Packet::new(i as f64, vec![i; i as usize + 1])).unwrap();
        }
        w.finish().unwrap();
        let strict = PcapReader::new(buf.as_slice()).unwrap().collect_packets().unwrap();
        let mut report = IngestReport::new();
        let lenient = read_packets_lenient(&buf, &mut report);
        assert_eq!(strict, lenient);
        assert_eq!(report.packets_read, 5);
        assert!(!report.has_loss());
    }

    #[test]
    fn span_read_matches_copying_read_including_faults() {
        // Clean records followed by a truncated final record: spans and
        // copies must agree packet-for-packet and report-for-report.
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for i in 0..4u8 {
            w.write_packet(&Packet::new(i as f64, vec![i; 20 + i as usize])).unwrap();
        }
        w.finish().unwrap();
        buf.truncate(buf.len() - 3);
        let mut copy_report = IngestReport::new();
        let packets = read_packets_lenient(&buf, &mut copy_report);
        let mut span_report = IngestReport::new();
        let mut spans = Vec::new();
        read_packet_spans_lenient(&buf, &mut span_report, &mut spans);
        assert_eq!(packets.len(), spans.len());
        for (p, s) in packets.iter().zip(&spans) {
            assert_eq!(p.ts, s.ts);
            assert_eq!(p.data.as_slice(), s.bytes(&buf));
        }
        assert_eq!(copy_report, span_report);
    }

    #[test]
    fn lenient_read_stops_at_oversized_caplen() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_packet(&Packet::new(1.0, vec![7; 3])).unwrap();
        w.finish().unwrap();
        let mut rec = [0u8; 16];
        rec[8..12].copy_from_slice(&(MAX_CAPTURE_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&rec);
        let mut report = IngestReport::new();
        let got = read_packets_lenient(&buf, &mut report);
        assert_eq!(got.len(), 1);
        assert_eq!(report.records_dropped, 1);
        assert_eq!(report.bytes_skipped, 16);
        assert!(!report.capture_truncated, "corruption, not truncation");
    }

    #[test]
    fn rejects_oversized_caplen() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf).unwrap();
        let mut rec = [0u8; 16];
        rec[8..12].copy_from_slice(&(MAX_CAPTURE_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&rec);
        let mut r = PcapReader::new(buf.as_slice()).unwrap();
        assert!(matches!(r.next_packet(), Err(Error::BadCaptureLength(_))));
    }

    #[test]
    fn reads_swapped_endianness() {
        // Hand-build a big-endian header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0u8; 8]); // thiszone, sigfigs
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&500_000u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&2u32.to_be_bytes()); // caplen
        buf.extend_from_slice(&2u32.to_be_bytes()); // origlen
        buf.extend_from_slice(&[0xab, 0xcd]);
        let mut r = PcapReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_ETHERNET);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.data, [0xab, 0xcd]);
        assert!((p.ts - 7.5).abs() < 1e-9);
    }

    #[test]
    fn linktype_is_preserved() {
        let mut buf = Vec::new();
        PcapWriter::with_linktype(&mut buf, 101).unwrap();
        let r = PcapReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.linktype(), 101);
    }
}
