//! Payload-type classification.
//!
//! DynaMiner annotates WCG edges with the type of the payload a response
//! delivered. The class is inferred from three signals, in priority order:
//! leading magic bytes, the `Content-Type` header, and the URI file
//! extension. Ransomware payloads arrive under many different extensions;
//! following the paper, we match against a compiled list of 45 crypto-locker
//! extensions ([`RANSOMWARE_EXTENSIONS`]).

use serde::{Deserialize, Serialize};

/// The payload classes DynaMiner distinguishes.
///
/// `Pdf`, `Exe`, `Jar`, `Swf`, `Xap`, and `Dmg` are the "known exploit
/// payload" types from the paper; `Crypt` covers the 45 ransomware
/// extensions; the remainder are commonly exchanged benign types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PayloadClass {
    /// Portable Document Format.
    Pdf,
    /// Windows executable (PE) or generic `.exe`.
    Exe,
    /// Java archive.
    Jar,
    /// Adobe Flash (`.swf`).
    Swf,
    /// Microsoft Silverlight application (`.xap`).
    Xap,
    /// macOS disk image.
    Dmg,
    /// Crypto-locker / ransomware payload (any of the 45 known extensions).
    Crypt,
    /// JavaScript source.
    Js,
    /// HTML document.
    Html,
    /// CSS stylesheet.
    Css,
    /// Image (png/jpeg/gif/ico/webp/svg).
    Image,
    /// Compressed archive (zip/gz/rar/7z — when not ransomware-flagged).
    Archive,
    /// JSON document.
    Json,
    /// Plain text.
    Text,
    /// Anything else with a body.
    Other,
    /// No body at all.
    Empty,
}

impl PayloadClass {
    /// Whether this class is one of the paper's "known exploit payload"
    /// types (Sec. III-C: `*.jar`, `*.exe`, `*.pdf`, `*.xap`, `*.swf`,
    /// plus ransomware payloads and the `.dmg` executable from the live
    /// case study).
    pub fn is_exploit_type(self) -> bool {
        matches!(
            self,
            PayloadClass::Pdf
                | PayloadClass::Exe
                | PayloadClass::Jar
                | PayloadClass::Swf
                | PayloadClass::Xap
                | PayloadClass::Dmg
                | PayloadClass::Crypt
        )
    }

    /// Whether this class is an executable-like binary (used by the
    /// trusted-vendor weed-out heuristics).
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            PayloadClass::Exe | PayloadClass::Dmg | PayloadClass::Jar | PayloadClass::Archive
        )
    }

    /// Short lowercase label, e.g. for table output.
    pub fn label(self) -> &'static str {
        match self {
            PayloadClass::Pdf => "pdf",
            PayloadClass::Exe => "exe",
            PayloadClass::Jar => "jar",
            PayloadClass::Swf => "swf",
            PayloadClass::Xap => "xap",
            PayloadClass::Dmg => "dmg",
            PayloadClass::Crypt => "crypt",
            PayloadClass::Js => "js",
            PayloadClass::Html => "html",
            PayloadClass::Css => "css",
            PayloadClass::Image => "image",
            PayloadClass::Archive => "archive",
            PayloadClass::Json => "json",
            PayloadClass::Text => "text",
            PayloadClass::Other => "other",
            PayloadClass::Empty => "empty",
        }
    }
}

impl std::fmt::Display for PayloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The 45 crypto-locker file extensions compiled from industry ransomware
/// reports (paper reference 10).
pub const RANSOMWARE_EXTENSIONS: [&str; 45] = [
    "crypt", "crypted", "cryptolocker", "crypto", "encrypted", "enc", "locked", "locky", "zepto",
    "odin", "thor", "aesir", "zzzzz", "cerber", "cerber2", "cerber3", "crysis", "wallet", "dharma",
    "sage", "globe", "purge", "breaking_bad", "legion", "fantom", "xtbl", "vault", "ecc", "ezz",
    "exx", "abc", "aaa", "zzz", "xyz", "micro", "ttt", "mp3x", "magic", "r5a", "rdm", "rrk",
    "vvv", "ccc", "kraken", "darkness",
];

/// Returns `true` when `ext` (without the dot, any case) is one of the 45
/// known ransomware extensions.
pub fn is_ransomware_extension(ext: &str) -> bool {
    let lower = ext.to_ascii_lowercase();
    RANSOMWARE_EXTENSIONS.contains(&lower.as_str())
}

/// Extracts the lowercase file extension from a URI path (query string and
/// fragment stripped).
pub fn uri_extension(uri: &str) -> Option<String> {
    let path = uri.split(['?', '#']).next().unwrap_or(uri);
    let file = path.rsplit('/').next().unwrap_or(path);
    let (stem, ext) = file.rsplit_once('.')?;
    if stem.is_empty() || ext.is_empty() || ext.len() > 16 {
        return None;
    }
    Some(ext.to_ascii_lowercase())
}

fn classify_magic(body: &[u8]) -> Option<PayloadClass> {
    if body.len() < 4 {
        return None;
    }
    match &body[..4] {
        b"%PDF" => Some(PayloadClass::Pdf),
        [0x4d, 0x5a, _, _] => Some(PayloadClass::Exe), // "MZ"
        [0xca, 0xfe, 0xba, 0xbe] => Some(PayloadClass::Jar),
        [b'F', b'W', b'S', _] | [b'C', b'W', b'S', _] | [b'Z', b'W', b'S', _] => {
            Some(PayloadClass::Swf)
        }
        [0x89, b'P', b'N', b'G'] => Some(PayloadClass::Image),
        [0xff, 0xd8, 0xff, _] => Some(PayloadClass::Image),
        [b'G', b'I', b'F', b'8'] => Some(PayloadClass::Image),
        _ => None,
    }
}

fn classify_content_type(ct: &str) -> Option<PayloadClass> {
    let ct = ct.split(';').next().unwrap_or(ct).trim().to_ascii_lowercase();
    match ct.as_str() {
        "application/pdf" => Some(PayloadClass::Pdf),
        "application/x-msdownload"
        | "application/x-msdos-program"
        | "application/vnd.microsoft.portable-executable" => Some(PayloadClass::Exe),
        "application/java-archive" | "application/x-java-archive" => Some(PayloadClass::Jar),
        "application/x-shockwave-flash" => Some(PayloadClass::Swf),
        "application/x-silverlight-app" => Some(PayloadClass::Xap),
        "application/x-apple-diskimage" => Some(PayloadClass::Dmg),
        "application/javascript" | "text/javascript" | "application/x-javascript" => {
            Some(PayloadClass::Js)
        }
        "text/html" | "application/xhtml+xml" => Some(PayloadClass::Html),
        "text/css" => Some(PayloadClass::Css),
        "application/json" => Some(PayloadClass::Json),
        "text/plain" => Some(PayloadClass::Text),
        "application/zip"
        | "application/gzip"
        | "application/x-gzip"
        | "application/x-rar-compressed"
        | "application/x-7z-compressed" => Some(PayloadClass::Archive),
        _ if ct.starts_with("image/") => Some(PayloadClass::Image),
        _ => None,
    }
}

fn classify_extension(ext: &str) -> Option<PayloadClass> {
    match ext {
        "pdf" => Some(PayloadClass::Pdf),
        "exe" | "scr" | "msi" | "com" => Some(PayloadClass::Exe),
        "jar" => Some(PayloadClass::Jar),
        "swf" => Some(PayloadClass::Swf),
        "xap" => Some(PayloadClass::Xap),
        "dmg" => Some(PayloadClass::Dmg),
        "js" => Some(PayloadClass::Js),
        "html" | "htm" | "php" | "asp" | "aspx" | "jsp" => Some(PayloadClass::Html),
        "css" => Some(PayloadClass::Css),
        "png" | "jpg" | "jpeg" | "gif" | "ico" | "webp" | "svg" | "bmp" => {
            Some(PayloadClass::Image)
        }
        "zip" | "gz" | "tgz" | "rar" | "7z" => Some(PayloadClass::Archive),
        "json" => Some(PayloadClass::Json),
        "txt" | "log" => Some(PayloadClass::Text),
        e if is_ransomware_extension(e) => Some(PayloadClass::Crypt),
        _ => None,
    }
}

/// Classifies a response payload from its URI, `Content-Type` header, size,
/// and (optionally) the first bytes of its body.
///
/// Priority: ransomware extension → magic bytes → `Content-Type` → other
/// URI extension → `Other`/`Empty`.
pub fn classify(uri: &str, content_type: Option<&str>, size: usize, body: &[u8]) -> PayloadClass {
    let ext = uri_extension(uri);
    // The ransomware-extension match dominates: crypto-locker payloads ship
    // with generic content types and arbitrary magic.
    if let Some(e) = &ext {
        if is_ransomware_extension(e) {
            return PayloadClass::Crypt;
        }
    }
    if size == 0 {
        return PayloadClass::Empty;
    }
    if let Some(c) = classify_magic(body) {
        return c;
    }
    if let Some(c) = content_type.and_then(classify_content_type) {
        return c;
    }
    if let Some(c) = ext.as_deref().and_then(classify_extension) {
        return c;
    }
    PayloadClass::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ransomware_list_has_45_unique_entries() {
        let mut set: Vec<&str> = RANSOMWARE_EXTENSIONS.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 45);
    }

    #[test]
    fn extension_extraction() {
        assert_eq!(uri_extension("/a/b/payload.exe"), Some("exe".into()));
        assert_eq!(uri_extension("/a/b/payload.EXE?x=1"), Some("exe".into()));
        assert_eq!(uri_extension("/gate.php#frag"), Some("php".into()));
        assert_eq!(uri_extension("/noext"), None);
        assert_eq!(uri_extension("/.hidden"), None);
        assert_eq!(uri_extension("/"), None);
    }

    #[test]
    fn ransomware_extension_dominates() {
        assert_eq!(
            classify("/files/invoice.locky", Some("application/octet-stream"), 1000, b"MZxx"),
            PayloadClass::Crypt
        );
    }

    #[test]
    fn magic_bytes_beat_content_type() {
        assert_eq!(
            classify("/download", Some("text/plain"), 100, b"%PDF-1.5"),
            PayloadClass::Pdf
        );
        assert_eq!(classify("/d", None, 100, b"MZ\x90\x00"), PayloadClass::Exe);
        assert_eq!(classify("/d", None, 100, b"CWS\x09"), PayloadClass::Swf);
        assert_eq!(classify("/d", None, 100, &[0xca, 0xfe, 0xba, 0xbe]), PayloadClass::Jar);
    }

    #[test]
    fn content_type_beats_extension() {
        assert_eq!(
            classify("/script.txt", Some("application/javascript"), 10, b""),
            PayloadClass::Js
        );
        assert_eq!(
            classify("/x", Some("text/html; charset=utf-8"), 10, b""),
            PayloadClass::Html
        );
    }

    #[test]
    fn extension_fallback() {
        assert_eq!(classify("/a.jar", None, 10, b""), PayloadClass::Jar);
        assert_eq!(classify("/a.xap", None, 10, b""), PayloadClass::Xap);
        assert_eq!(classify("/a.dmg", None, 10, b""), PayloadClass::Dmg);
        assert_eq!(classify("/landing.php", None, 10, b""), PayloadClass::Html);
    }

    #[test]
    fn unknown_types() {
        assert_eq!(classify("/mystery", None, 10, b"??"), PayloadClass::Other);
        assert_eq!(classify("/mystery", None, 0, b""), PayloadClass::Empty);
    }

    #[test]
    fn exploit_type_predicate() {
        for c in [
            PayloadClass::Pdf,
            PayloadClass::Exe,
            PayloadClass::Jar,
            PayloadClass::Swf,
            PayloadClass::Xap,
            PayloadClass::Dmg,
            PayloadClass::Crypt,
        ] {
            assert!(c.is_exploit_type(), "{c} should be an exploit type");
        }
        for c in [PayloadClass::Js, PayloadClass::Html, PayloadClass::Image, PayloadClass::Empty] {
            assert!(!c.is_exploit_type(), "{c} should not be an exploit type");
        }
    }

    #[test]
    fn image_content_types() {
        assert_eq!(classify("/x", Some("image/webp"), 5, b""), PayloadClass::Image);
    }
}
