//! Payload-type classification.
//!
//! DynaMiner annotates WCG edges with the type of the payload a response
//! delivered. The class is inferred from three signals, in priority order:
//! leading magic bytes, the `Content-Type` header, and the URI file
//! extension. Ransomware payloads arrive under many different extensions;
//! following the paper, we match against a compiled list of 45 crypto-locker
//! extensions ([`RANSOMWARE_EXTENSIONS`]).

use serde::{Deserialize, Serialize};

/// The payload classes DynaMiner distinguishes.
///
/// `Pdf`, `Exe`, `Jar`, `Swf`, `Xap`, and `Dmg` are the "known exploit
/// payload" types from the paper; `Crypt` covers the 45 ransomware
/// extensions; the remainder are commonly exchanged benign types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PayloadClass {
    /// Portable Document Format.
    Pdf,
    /// Windows executable (PE) or generic `.exe`.
    Exe,
    /// Java archive.
    Jar,
    /// Adobe Flash (`.swf`).
    Swf,
    /// Microsoft Silverlight application (`.xap`).
    Xap,
    /// macOS disk image.
    Dmg,
    /// Crypto-locker / ransomware payload (any of the 45 known extensions).
    Crypt,
    /// JavaScript source.
    Js,
    /// HTML document.
    Html,
    /// CSS stylesheet.
    Css,
    /// Image (png/jpeg/gif/ico/webp/svg).
    Image,
    /// Compressed archive (zip/gz/rar/7z — when not ransomware-flagged).
    Archive,
    /// JSON document.
    Json,
    /// Plain text.
    Text,
    /// Anything else with a body.
    Other,
    /// No body at all.
    Empty,
}

impl PayloadClass {
    /// Whether this class is one of the paper's "known exploit payload"
    /// types (Sec. III-C: `*.jar`, `*.exe`, `*.pdf`, `*.xap`, `*.swf`,
    /// plus ransomware payloads and the `.dmg` executable from the live
    /// case study).
    pub fn is_exploit_type(self) -> bool {
        matches!(
            self,
            PayloadClass::Pdf
                | PayloadClass::Exe
                | PayloadClass::Jar
                | PayloadClass::Swf
                | PayloadClass::Xap
                | PayloadClass::Dmg
                | PayloadClass::Crypt
        )
    }

    /// Whether this class is an executable-like binary (used by the
    /// trusted-vendor weed-out heuristics).
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            PayloadClass::Exe | PayloadClass::Dmg | PayloadClass::Jar | PayloadClass::Archive
        )
    }

    /// Short lowercase label, e.g. for table output.
    pub fn label(self) -> &'static str {
        match self {
            PayloadClass::Pdf => "pdf",
            PayloadClass::Exe => "exe",
            PayloadClass::Jar => "jar",
            PayloadClass::Swf => "swf",
            PayloadClass::Xap => "xap",
            PayloadClass::Dmg => "dmg",
            PayloadClass::Crypt => "crypt",
            PayloadClass::Js => "js",
            PayloadClass::Html => "html",
            PayloadClass::Css => "css",
            PayloadClass::Image => "image",
            PayloadClass::Archive => "archive",
            PayloadClass::Json => "json",
            PayloadClass::Text => "text",
            PayloadClass::Other => "other",
            PayloadClass::Empty => "empty",
        }
    }
}

impl std::fmt::Display for PayloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The 45 crypto-locker file extensions compiled from industry ransomware
/// reports (paper reference 10).
pub const RANSOMWARE_EXTENSIONS: [&str; 45] = [
    "crypt", "crypted", "cryptolocker", "crypto", "encrypted", "enc", "locked", "locky", "zepto",
    "odin", "thor", "aesir", "zzzzz", "cerber", "cerber2", "cerber3", "crysis", "wallet", "dharma",
    "sage", "globe", "purge", "breaking_bad", "legion", "fantom", "xtbl", "vault", "ecc", "ezz",
    "exx", "abc", "aaa", "zzz", "xyz", "micro", "ttt", "mp3x", "magic", "r5a", "rdm", "rrk",
    "vvv", "ccc", "kraken", "darkness",
];

/// Returns `true` when `ext` (without the dot, any case) is one of the 45
/// known ransomware extensions. Case is folded per comparison — no
/// lowercase copy is allocated.
pub fn is_ransomware_extension(ext: &str) -> bool {
    RANSOMWARE_EXTENSIONS.iter().any(|e| e.eq_ignore_ascii_case(ext))
}

/// Extracts the file extension from a URI path (query string and fragment
/// stripped) in its original case. The allocation-free core of
/// [`uri_extension`], used directly by the per-response classifier.
fn uri_extension_raw(uri: &str) -> Option<&str> {
    let path = uri.split(['?', '#']).next().unwrap_or(uri);
    let file = path.rsplit('/').next().unwrap_or(path);
    let (stem, ext) = file.rsplit_once('.')?;
    if stem.is_empty() || ext.is_empty() || ext.len() > 16 {
        return None;
    }
    Some(ext)
}

/// Extracts the lowercase file extension from a URI path (query string and
/// fragment stripped).
pub fn uri_extension(uri: &str) -> Option<String> {
    uri_extension_raw(uri).map(|ext| ext.to_ascii_lowercase())
}

fn classify_magic(body: &[u8]) -> Option<PayloadClass> {
    if body.len() < 4 {
        return None;
    }
    match &body[..4] {
        b"%PDF" => Some(PayloadClass::Pdf),
        [0x4d, 0x5a, _, _] => Some(PayloadClass::Exe), // "MZ"
        [0xca, 0xfe, 0xba, 0xbe] => Some(PayloadClass::Jar),
        [b'F', b'W', b'S', _] | [b'C', b'W', b'S', _] | [b'Z', b'W', b'S', _] => {
            Some(PayloadClass::Swf)
        }
        [0x89, b'P', b'N', b'G'] => Some(PayloadClass::Image),
        [0xff, 0xd8, 0xff, _] => Some(PayloadClass::Image),
        [b'G', b'I', b'F', b'8'] => Some(PayloadClass::Image),
        _ => None,
    }
}

/// Media-type table for [`classify_content_type`], compared
/// case-insensitively without allocating a lowercase copy.
const CONTENT_TYPE_CLASSES: &[(&str, PayloadClass)] = &[
    ("application/pdf", PayloadClass::Pdf),
    ("application/x-msdownload", PayloadClass::Exe),
    ("application/x-msdos-program", PayloadClass::Exe),
    ("application/vnd.microsoft.portable-executable", PayloadClass::Exe),
    ("application/java-archive", PayloadClass::Jar),
    ("application/x-java-archive", PayloadClass::Jar),
    ("application/x-shockwave-flash", PayloadClass::Swf),
    ("application/x-silverlight-app", PayloadClass::Xap),
    ("application/x-apple-diskimage", PayloadClass::Dmg),
    ("application/javascript", PayloadClass::Js),
    ("text/javascript", PayloadClass::Js),
    ("application/x-javascript", PayloadClass::Js),
    ("text/html", PayloadClass::Html),
    ("application/xhtml+xml", PayloadClass::Html),
    ("text/css", PayloadClass::Css),
    ("application/json", PayloadClass::Json),
    ("text/plain", PayloadClass::Text),
    ("application/zip", PayloadClass::Archive),
    ("application/gzip", PayloadClass::Archive),
    ("application/x-gzip", PayloadClass::Archive),
    ("application/x-rar-compressed", PayloadClass::Archive),
    ("application/x-7z-compressed", PayloadClass::Archive),
];

fn classify_content_type(ct: &str) -> Option<PayloadClass> {
    let ct = ct.split(';').next().unwrap_or(ct).trim();
    for &(name, class) in CONTENT_TYPE_CLASSES {
        if ct.eq_ignore_ascii_case(name) {
            return Some(class);
        }
    }
    // Byte-level prefix test so a non-ASCII byte right after the prefix
    // cannot trip a char-boundary panic.
    let b = ct.as_bytes();
    if b.len() >= 6 && b[..6].eq_ignore_ascii_case(b"image/") {
        return Some(PayloadClass::Image);
    }
    None
}

fn classify_extension(ext: &str) -> Option<PayloadClass> {
    // Extensions are at most 16 bytes (enforced by `uri_extension_raw`),
    // so case is folded on the stack instead of allocating a lowercase
    // String per classified response.
    let bytes = ext.as_bytes();
    let mut buf = [0u8; 16];
    if bytes.len() > buf.len() {
        return None;
    }
    for (d, s) in buf.iter_mut().zip(bytes) {
        *d = s.to_ascii_lowercase();
    }
    match &buf[..bytes.len()] {
        b"pdf" => Some(PayloadClass::Pdf),
        b"exe" | b"scr" | b"msi" | b"com" => Some(PayloadClass::Exe),
        b"jar" => Some(PayloadClass::Jar),
        b"swf" => Some(PayloadClass::Swf),
        b"xap" => Some(PayloadClass::Xap),
        b"dmg" => Some(PayloadClass::Dmg),
        b"js" => Some(PayloadClass::Js),
        b"html" | b"htm" | b"php" | b"asp" | b"aspx" | b"jsp" => Some(PayloadClass::Html),
        b"css" => Some(PayloadClass::Css),
        b"png" | b"jpg" | b"jpeg" | b"gif" | b"ico" | b"webp" | b"svg" | b"bmp" => {
            Some(PayloadClass::Image)
        }
        b"zip" | b"gz" | b"tgz" | b"rar" | b"7z" => Some(PayloadClass::Archive),
        b"json" => Some(PayloadClass::Json),
        b"txt" | b"log" => Some(PayloadClass::Text),
        _ if is_ransomware_extension(ext) => Some(PayloadClass::Crypt),
        _ => None,
    }
}

/// Classifies a response payload from its URI, `Content-Type` header, size,
/// and (optionally) the first bytes of its body.
///
/// Priority: ransomware extension → magic bytes → `Content-Type` → other
/// URI extension → `Other`/`Empty`.
pub fn classify(uri: &str, content_type: Option<&str>, size: usize, body: &[u8]) -> PayloadClass {
    let ext = uri_extension_raw(uri);
    // The ransomware-extension match dominates: crypto-locker payloads ship
    // with generic content types and arbitrary magic.
    if let Some(e) = ext {
        if is_ransomware_extension(e) {
            return PayloadClass::Crypt;
        }
    }
    if size == 0 {
        return PayloadClass::Empty;
    }
    if let Some(c) = classify_magic(body) {
        return c;
    }
    if let Some(c) = content_type.and_then(classify_content_type) {
        return c;
    }
    if let Some(c) = ext.and_then(classify_extension) {
        return c;
    }
    PayloadClass::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ransomware_list_has_45_unique_entries() {
        let mut set: Vec<&str> = RANSOMWARE_EXTENSIONS.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 45);
    }

    #[test]
    fn extension_extraction() {
        assert_eq!(uri_extension("/a/b/payload.exe"), Some("exe".into()));
        assert_eq!(uri_extension("/a/b/payload.EXE?x=1"), Some("exe".into()));
        assert_eq!(uri_extension("/gate.php#frag"), Some("php".into()));
        assert_eq!(uri_extension("/noext"), None);
        assert_eq!(uri_extension("/.hidden"), None);
        assert_eq!(uri_extension("/"), None);
    }

    #[test]
    fn ransomware_extension_dominates() {
        assert_eq!(
            classify("/files/invoice.locky", Some("application/octet-stream"), 1000, b"MZxx"),
            PayloadClass::Crypt
        );
    }

    #[test]
    fn magic_bytes_beat_content_type() {
        assert_eq!(
            classify("/download", Some("text/plain"), 100, b"%PDF-1.5"),
            PayloadClass::Pdf
        );
        assert_eq!(classify("/d", None, 100, b"MZ\x90\x00"), PayloadClass::Exe);
        assert_eq!(classify("/d", None, 100, b"CWS\x09"), PayloadClass::Swf);
        assert_eq!(classify("/d", None, 100, &[0xca, 0xfe, 0xba, 0xbe]), PayloadClass::Jar);
    }

    #[test]
    fn content_type_beats_extension() {
        assert_eq!(
            classify("/script.txt", Some("application/javascript"), 10, b""),
            PayloadClass::Js
        );
        assert_eq!(
            classify("/x", Some("text/html; charset=utf-8"), 10, b""),
            PayloadClass::Html
        );
    }

    #[test]
    fn extension_fallback() {
        assert_eq!(classify("/a.jar", None, 10, b""), PayloadClass::Jar);
        assert_eq!(classify("/a.xap", None, 10, b""), PayloadClass::Xap);
        assert_eq!(classify("/a.dmg", None, 10, b""), PayloadClass::Dmg);
        assert_eq!(classify("/landing.php", None, 10, b""), PayloadClass::Html);
    }

    #[test]
    fn unknown_types() {
        assert_eq!(classify("/mystery", None, 10, b"??"), PayloadClass::Other);
        assert_eq!(classify("/mystery", None, 0, b""), PayloadClass::Empty);
    }

    #[test]
    fn exploit_type_predicate() {
        for c in [
            PayloadClass::Pdf,
            PayloadClass::Exe,
            PayloadClass::Jar,
            PayloadClass::Swf,
            PayloadClass::Xap,
            PayloadClass::Dmg,
            PayloadClass::Crypt,
        ] {
            assert!(c.is_exploit_type(), "{c} should be an exploit type");
        }
        for c in [PayloadClass::Js, PayloadClass::Html, PayloadClass::Image, PayloadClass::Empty] {
            assert!(!c.is_exploit_type(), "{c} should not be an exploit type");
        }
    }

    #[test]
    fn image_content_types() {
        assert_eq!(classify("/x", Some("image/webp"), 5, b""), PayloadClass::Image);
    }
}
