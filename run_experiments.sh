#!/bin/bash
# Regenerates every paper table and figure at full corpus scale.
# Usage: ./run_experiments.sh [scale]   (default 1.0)
set -u
export DYNAMINER_SCALE="${1:-1.0}"
cd "$(dirname "$0")"
mkdir -p results
BINS="table1 fig1_enticement fig2_origins fig3_graph_props fig4_header_props \
fig6_example_wcg fig7_9_distributions table3_ablation table4_ranking fig10_roc \
table5_validation case1_forensic table6_live global_props \
ablation_vote ablation_threshold ablation_stages evasion_resilience extension_features extension_family_attribution extension_learning_curve hyperparams ablation_tree_vs_forest"
for b in $BINS; do
  echo "== running $b (scale $DYNAMINER_SCALE) =="
  cargo run --release -p bench --bin "$b" > "results/$b.txt" 2>&1 || echo "FAILED: $b"
done
echo "ALL_EXPERIMENTS_DONE"
