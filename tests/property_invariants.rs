//! Property-based tests over the core data structures and invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use dynaminer::features::{self, FeatureExtractor, TopoCache};
use dynaminer::wcg::{PushOutcome, Wcg, WcgBuilder};
use nettrace::http::{HeaderMap, Method};
use nettrace::payload::PayloadClass;
use nettrace::reassembly::Endpoint;
use nettrace::HttpTransaction;
use std::net::Ipv4Addr;
use wcgraph::algo;
use wcgraph::DiGraph;

// ---------------------------------------------------------------------
// Graph algorithm invariants on random digraphs.
// ---------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = DiGraph<(), ()>> {
    (2usize..12).prop_flat_map(|n| {
        vec((0..n, 0..n), 0..30).prop_map(move |edges| {
            let mut g = DiGraph::new();
            let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b) in edges {
                g.add_edge(ids[a], ids[b], ());
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn pagerank_sums_to_one_and_is_positive(g in arb_graph()) {
        let pr = algo::pagerank::pagerank_default(&g);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(pr.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn centralities_are_finite_and_nonnegative(g in arb_graph()) {
        for values in [
            algo::centrality::betweenness_centrality(&g),
            algo::centrality::closeness_centrality(&g),
            algo::centrality::load_centrality(&g),
            algo::centrality::degree_centrality(&g),
        ] {
            prop_assert!(values.iter().all(|v| v.is_finite() && *v >= -1e-12));
        }
    }

    #[test]
    fn closeness_bounded_by_one(g in arb_graph()) {
        for v in algo::centrality::closeness_centrality(&g) {
            prop_assert!(v <= 1.0 + 1e-12, "closeness {v}");
        }
    }

    #[test]
    fn diameter_bounded_by_order(g in arb_graph()) {
        prop_assert!(algo::paths::diameter(&g) < g.node_count().max(1));
    }

    #[test]
    fn reciprocity_is_a_fraction(g in arb_graph()) {
        let r = algo::reciprocity::reciprocity(&g);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn clustering_coefficients_are_fractions(g in arb_graph()) {
        for c in algo::clustering::clustering_coefficients(&g) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn scc_ids_are_valid_and_cycles_collapse(g in arb_graph()) {
        let comp = algo::components::strongly_connected_components(&g);
        prop_assert_eq!(comp.len(), g.node_count());
        let count = algo::components::scc_count(&g);
        prop_assert!(comp.iter().all(|&c| c < count));
        // Mutually reachable simple-digraph neighbors share a component.
        let (succ, _) = g.directed_adjacency();
        for (u, out) in succ.iter().enumerate() {
            for &v in out {
                if succ[v].binary_search(&u).is_ok() {
                    prop_assert_eq!(comp[u], comp[v]);
                }
            }
        }
    }

    #[test]
    fn assortativity_is_a_correlation(g in arb_graph()) {
        let a = algo::components::degree_assortativity(&g);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a), "{}", a);
    }

    #[test]
    fn radius_at_most_diameter(g in arb_graph()) {
        let r = algo::components::radius(&g);
        let d = algo::paths::diameter(&g);
        prop_assert!(r <= d, "radius {} > diameter {}", r, d);
    }

    #[test]
    fn local_connectivity_bounded_by_min_degree(g in arb_graph()) {
        let adj = g.undirected_adjacency();
        let n = g.node_count();
        for s in 0..n {
            for t in (s + 1)..n {
                let c = algo::connectivity::local_node_connectivity(&adj, s, t);
                let bound = adj[s].len().min(adj[t].len());
                // Adjacent nodes can exceed the internal-path bound by the
                // direct edge; Menger applies to non-adjacent pairs.
                let adjacent = adj[s].binary_search(&t).is_ok();
                prop_assert!(
                    c <= bound + usize::from(adjacent),
                    "connectivity {c} > min degree {bound} for ({s},{t})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Codec roundtrips.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn base64_roundtrips(data in vec(any::<u8>(), 0..200)) {
        let enc = nettrace::base64::encode(&data);
        prop_assert_eq!(nettrace::base64::decode(&enc).unwrap(), data);
    }

    #[test]
    fn chunked_encoding_roundtrips(body in vec(any::<u8>(), 0..500)) {
        let enc = nettrace::http::encode_chunked(&body);
        let (dec, consumed) = nettrace::http::decode_chunked(&enc).unwrap().unwrap();
        prop_assert_eq!(dec, body);
        prop_assert_eq!(consumed, enc.len());
    }

    #[test]
    fn pcap_roundtrips(packets in vec((0.0f64..2e9, vec(any::<u8>(), 0..100)), 0..20)) {
        let mut buf = Vec::new();
        let mut w = nettrace::pcap::PcapWriter::new(&mut buf).unwrap();
        for (ts, data) in &packets {
            w.write_packet(&nettrace::pcap::Packet::new(*ts, data.clone())).unwrap();
        }
        w.finish().unwrap();
        let got = nettrace::pcap::PcapReader::new(buf.as_slice())
            .unwrap()
            .collect_packets()
            .unwrap();
        prop_assert_eq!(got.len(), packets.len());
        for ((ts, data), p) in packets.iter().zip(&got) {
            prop_assert_eq!(&p.data, data);
            prop_assert!((p.ts - ts).abs() < 1e-5);
        }
    }
}

// ---------------------------------------------------------------------
// Parser robustness: arbitrary bytes must error, never panic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn capture_readers_never_panic_on_garbage(bytes in vec(any::<u8>(), 0..400)) {
        let _ = nettrace::capture::read_packets(&bytes);
        let _ = nettrace::pcapng::read_packets(&bytes);
        if let Ok(reader) = nettrace::pcap::PcapReader::new(bytes.as_slice()) {
            let _ = reader.collect_packets();
        }
    }

    #[test]
    fn pcapng_survives_bit_flips(
        packets in vec((0.0f64..1e6, vec(any::<u8>(), 0..40)), 1..5),
        flip in 0usize..10_000,
    ) {
        let mut bytes = nettrace::pcapng::write_packets(
            &packets.iter().map(|(t, d)| nettrace::pcap::Packet::new(*t, d.clone())).collect::<Vec<_>>(),
        );
        let idx = flip % bytes.len();
        bytes[idx] ^= 0x55;
        let _ = nettrace::pcapng::read_packets(&bytes); // Ok or Err, no panic
    }

    #[test]
    fn gzip_roundtrips_arbitrary_bodies(body in vec(any::<u8>(), 0..4000)) {
        let gz = nettrace::flate::gzip_compress(&body);
        prop_assert_eq!(nettrace::flate::gzip_decompress(&gz).unwrap(), body);
    }

    #[test]
    fn inflate_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..300)) {
        let _ = nettrace::flate::inflate(&bytes);
        let _ = nettrace::flate::gzip_decompress(&bytes);
    }

    #[test]
    fn fixed_literal_deflate_roundtrips(body in vec(any::<u8>(), 0..1500)) {
        let deflated = nettrace::flate::deflate_fixed_literals(&body);
        prop_assert_eq!(nettrace::flate::inflate(&deflated).unwrap(), body);
    }

    #[test]
    fn extractor_never_panics_on_random_packets(
        raw in vec(vec(any::<u8>(), 0..120), 0..10)
    ) {
        let packets: Vec<nettrace::pcap::Packet> =
            raw.into_iter().enumerate().map(|(i, d)| nettrace::pcap::Packet::new(i as f64, d)).collect();
        let _ = nettrace::TransactionExtractor::extract(&packets);
    }

    #[test]
    fn lenient_pipeline_absorbs_arbitrary_capture_mutations(
        mutations in vec((0usize..1_000_000, 1u8..=255), 1..24)
    ) {
        // Full path on a real capture with arbitrary byte damage: pcap →
        // reassembly → transactions → detector. The lenient pipeline has
        // no error path — whatever the mutation, it must complete and
        // keep its books straight.
        let mut bytes = mutation_base_pcap().clone();
        for (pos, x) in mutations {
            let at = pos % bytes.len();
            bytes[at] ^= x;
        }
        let mut report = nettrace::IngestReport::new();
        let packets = nettrace::capture::read_packets_lenient(&bytes, &mut report);
        prop_assert_eq!(packets.len() as u64, report.packets_read);
        let txs = nettrace::TransactionExtractor::extract_lenient(&packets, &mut report);
        prop_assert_eq!(txs.len() as u64, report.transactions_recovered);
        prop_assert!(
            report.packets_dropped_decode + report.packets_non_tcp <= report.packets_read
        );
        let mut detector = dynaminer::detector::OnTheWireDetector::new(
            mutation_test_classifier().clone(),
            dynaminer::detector::DetectorConfig::default(),
        );
        for tx in &txs {
            detector.observe(tx);
        }
        prop_assert!(detector.transactions_seen() <= txs.len());
    }
}

/// One well-formed infection capture, built once, mutated per case.
fn mutation_base_pcap() -> &'static Vec<u8> {
    use rand::SeedableRng;
    static PCAP: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PCAP.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ep = synthtraffic::episode::generate_infection(
            &mut rng,
            synthtraffic::EkFamily::Angler,
            1.4e9,
        );
        synthtraffic::pcapgen::episode_pcap(&ep).unwrap()
    })
}

/// A deliberately tiny classifier — the property is about survival, not
/// detection quality.
fn mutation_test_classifier() -> &'static dynaminer::classifier::Classifier {
    use rand::SeedableRng;
    static CLF: std::sync::OnceLock<dynaminer::classifier::Classifier> =
        std::sync::OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..6 {
            items.push((
                synthtraffic::episode::generate_infection(
                    &mut rng,
                    synthtraffic::EkFamily::ALL[i],
                    1.4e9,
                )
                .transactions,
                true,
            ));
            items.push((
                synthtraffic::benign::generate_benign(
                    &mut rng,
                    synthtraffic::BenignScenario::Search,
                    1.43e9,
                )
                .transactions,
                false,
            ));
        }
        let data = dynaminer::classifier::build_dataset(
            items.iter().map(|(t, l)| (t.as_slice(), *l)),
        );
        dynaminer::classifier::Classifier::fit_default(&data, 3)
    })
}

// ---------------------------------------------------------------------
// WCG and feature invariants on random transaction streams.
// ---------------------------------------------------------------------

fn arb_transaction() -> impl Strategy<Value = HttpTransaction> {
    // "origin.example" matches the Referer host below, so streams can
    // contact an inferred origin node — the rare case that forces the
    // incremental builder down its rebuild path.
    let hosts = prop_oneof![
        Just("a.example.com".to_string()),
        Just("b.example.net".to_string()),
        Just("c.example.org".to_string()),
        Just("198.51.100.7".to_string()),
        Just("origin.example".to_string()),
    ];
    let methods = prop_oneof![Just(Method::Get), Just(Method::Post), Just(Method::Head)];
    let statuses = prop_oneof![
        Just(0u16), Just(200u16), Just(204u16), Just(302u16), Just(404u16), Just(500u16)
    ];
    let classes = prop_oneof![
        Just(PayloadClass::Html),
        Just(PayloadClass::Js),
        Just(PayloadClass::Exe),
        Just(PayloadClass::Image),
        Just(PayloadClass::Empty),
    ];
    (hosts, methods, statuses, classes, 0.0f64..1000.0, 0usize..100_000, any::<bool>()).prop_map(
        |(host, method, status, class, ts, size, with_referer)| {
            let mut req_headers = HeaderMap::new();
            req_headers.append("Host", host.clone());
            if with_referer {
                req_headers.append("Referer", "http://origin.example/start");
            }
            HttpTransaction {
                seq: 0,
                ts,
                resp_ts: ts + 0.05,
                client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 9), 50000),
                server: Endpoint::new(Ipv4Addr::new(203, 0, 113, 1), 80),
                host,
                method,
                uri: "/p/q.html".to_string(),
                req_headers,
                status,
                resp_headers: HeaderMap::new(),
                payload_class: class,
                payload_size: size,
                body_preview: Vec::new(),
                payload_digest: size as u64,
            }
        },
    )
}

proptest! {
    #[test]
    fn wcg_construction_never_panics_and_counts_add_up(
        txs in vec(arb_transaction(), 0..30)
    ) {
        let wcg = Wcg::from_transactions(&txs);
        prop_assert_eq!(wcg.tx_count, txs.len());
        // Every transaction contributes exactly one request edge.
        let requests = wcg
            .graph
            .edges()
            .filter(|(_, _, _, e)| e.kind == dynaminer::wcg::EdgeKind::Request)
            .count();
        prop_assert_eq!(requests, txs.len());
        // Stage counts partition the transactions.
        prop_assert_eq!(wcg.stage_counts.iter().sum::<usize>(), txs.len());
        // Method counts partition the transactions.
        let m = wcg.method_counts;
        prop_assert_eq!(m.get + m.post + m.other, txs.len());
        // Referrer counts partition the transactions.
        prop_assert_eq!(wcg.referrer_set + wcg.referrer_unset, txs.len());
    }

    #[test]
    fn features_always_finite(txs in vec(arb_transaction(), 0..30)) {
        let wcg = Wcg::from_transactions(&txs);
        let fv = features::extract(&wcg);
        for (i, v) in fv.values().iter().enumerate() {
            prop_assert!(v.is_finite(), "feature {} = {v}", features::NAMES[i]);
            prop_assert!(*v >= 0.0, "feature {} negative: {v}", features::NAMES[i]);
        }
    }

    #[test]
    fn wcg_duration_nonnegative_and_consistent(txs in vec(arb_transaction(), 1..30)) {
        let wcg = Wcg::from_transactions(&txs);
        prop_assert!(wcg.duration() >= 0.0);
        let min_ts = txs.iter().map(|t| t.ts).fold(f64::INFINITY, f64::min);
        prop_assert!((wcg.first_ts - min_ts).abs() < 1e-9);
    }

    // The incremental builder must be indistinguishable from a from-scratch
    // build at *every prefix* of an arbitrary stream. Random timestamps make
    // out-of-order arrivals (and hence the rebuild path) common, and the
    // "origin.example" host exercises origin-contact rebuilds.
    #[test]
    fn incremental_builder_matches_from_scratch_at_every_prefix(
        txs in vec(arb_transaction(), 0..25)
    ) {
        let mut builder = WcgBuilder::new();
        for i in 0..txs.len() {
            if builder.push(&txs[i]) == PushOutcome::NeedsRebuild {
                builder.rebuild(&txs[..=i]);
            }
            let fresh = Wcg::from_transactions(&txs[..=i]);
            prop_assert_eq!(
                serde_json::to_string(builder.wcg()).unwrap(),
                serde_json::to_string(&fresh).unwrap(),
                "incremental state diverged at prefix {}", i + 1
            );
        }
    }

    // The detector's memoized extraction path (topology features cached
    // against the builder's topo_version) must be bit-identical to a fresh
    // 37-feature extraction over a from-scratch WCG, for every prefix.
    #[test]
    fn memoized_features_match_fresh_extraction_bit_for_bit(
        txs in vec(arb_transaction(), 1..20)
    ) {
        let mut builder = WcgBuilder::new();
        let mut extractor = FeatureExtractor::new();
        let mut cache = TopoCache::new();
        for i in 0..txs.len() {
            if builder.push(&txs[i]) == PushOutcome::NeedsRebuild {
                builder.rebuild(&txs[..=i]);
            }
            let memo =
                extractor.extract_memoized(builder.wcg(), builder.topo_version(), &mut cache);
            let fresh = features::extract(&Wcg::from_transactions(&txs[..=i]));
            for (j, (a, b)) in memo.values().iter().zip(fresh.values()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "feature {} diverged at prefix {}: memoized {} fresh {}",
                    features::NAMES[j], i + 1, a, b
                );
            }
        }
    }
}
