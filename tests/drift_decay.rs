//! The adversarial drift lab, pinned (DESIGN.md §15).
//!
//! Four groups:
//!
//! 1. **Evasion ordering** — the promoted `evasion_lab` example: each
//!    Sec. VII cloaking strategy's offline recall at a fixed seed, with
//!    the ordering `Full ≤ every single strategy ≤ None` asserted
//!    rather than printed.
//! 2. **Goldens** — the scale-0.05 seed-42 campaign's decay curve and
//!    promotion ledger must match `tests/golden/` byte for byte, plus
//!    the acceptance properties: recall decays across the campaign
//!    without retraining, the shadow loop wins back at least half the
//!    loss, and every alert carries the model generation that served
//!    its epoch. Regenerate deliberately with:
//!
//!    ```text
//!    UPDATE_DRIFT_GOLDEN=1 cargo test --test drift_decay
//!    ```
//!
//!    On mismatch the actual JSON lands in `target/` for CI artifact
//!    upload.
//! 3. **Differential** — a champion-only campaign and a
//!    champion+shadow campaign with promotion disabled are
//!    bit-identical (alerts and forensic report), at 1 and 4 shards:
//!    the shadow loop is observation-only by construction.
//! 4. **Properties** — drift schedules are pure functions of
//!    `(config, epoch)` (byte-identical JSON), and promotion is
//!    monotone in both the observed margins and the policy thresholds.

use proptest::prelude::*;

use driftlab::{
    run_drift_lab, DriftLabConfig, DriftSchedule, DriftScheduleConfig, PromotionPolicy,
    RetrainConfig,
};
use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::Alert;
use dynaminer::wcg::Wcg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::{generate_infection, Episode};
use synthtraffic::evasion::{self, Evasion};
use synthtraffic::{BenignScenario, EkFamily};

// ---------------------------------------------------------------------
// 1. Evasion ordering (promoted from examples/evasion_lab.rs).
// ---------------------------------------------------------------------

fn quick_classifier(seed: u64) -> Classifier {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..60 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    Classifier::fit_default(&data, 1)
}

fn offline_recall(classifier: &Classifier, infections: &[Episode], evasion: Evasion) -> f64 {
    let detected = infections
        .iter()
        .filter(|ep| {
            let cloaked = evasion::apply(evasion, (*ep).clone());
            classifier.score_wcg(&Wcg::from_transactions(&cloaked.transactions)) >= 0.5
        })
        .count();
    detected as f64 / infections.len() as f64
}

#[test]
fn evasion_recall_ordering_is_stable_at_fixed_seed() {
    let classifier = quick_classifier(8);
    let mut rng = StdRng::seed_from_u64(2025);
    let infections: Vec<Episode> = (0..40)
        .map(|i| generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.45e9 + i as f64 * 37.0))
        .collect();

    let recall_of = |e| offline_recall(&classifier, &infections, e);
    let baseline = recall_of(Evasion::None);
    let full = recall_of(Evasion::Full);
    assert!(baseline > 0.8, "undrifted recall {baseline} too low to order against");

    // Full cloaking strips every dynamic at once: it must do no better
    // than any single strategy, and every single strategy no better
    // than the uncloaked baseline.
    for single in [
        Evasion::FilelessDownload,
        Evasion::NoRedirects,
        Evasion::NoCallback,
        Evasion::DelayedCallback,
    ] {
        let r = recall_of(single);
        assert!(full <= r, "{single:?}: full {full} > single {r}");
        assert!(r <= baseline, "{single:?}: single {r} > baseline {baseline}");
    }
    assert!(
        full < baseline,
        "full cloaking must cost detection: {full} vs {baseline}"
    );
}

// ---------------------------------------------------------------------
// 2. Goldens + acceptance properties for the pinned campaign.
// ---------------------------------------------------------------------

const CURVE_GOLDEN: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/decay_curve_scale0.05_seed42.json");
const LEDGER_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/promotion_ledger_scale0.05_seed42.json"
);

fn pinned_campaign() -> DriftLabConfig {
    DriftLabConfig {
        schedule: DriftScheduleConfig { seed: 42, scale: 0.05, ..DriftScheduleConfig::default() },
        train_scale: 0.05,
        ..DriftLabConfig::default()
    }
}

/// The ledger projection the golden pins: decision, margin, and the
/// resulting model generation per epoch.
#[derive(serde::Serialize)]
struct LedgerRow {
    epoch: usize,
    model_version: u64,
    recall_margin: f64,
    promoted: bool,
}

/// Regenerates (under `UPDATE_DRIFT_GOLDEN=1`) or byte-compares
/// `actual_json` against `golden_path`, leaving the actual in `target/`
/// on mismatch for CI artifact upload.
fn compare_against_golden(actual_json: &str, golden_path: &str, artifact_name: &str) {
    if std::env::var_os("UPDATE_DRIFT_GOLDEN").is_some() {
        std::fs::write(golden_path, format!("{actual_json}\n")).unwrap();
        eprintln!("regenerated {golden_path}");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("cannot read {golden_path}: {e} (run with UPDATE_DRIFT_GOLDEN=1 to create it)")
    });
    if golden.trim_end() != actual_json {
        let out = format!("{}/target/{artifact_name}", env!("CARGO_MANIFEST_DIR"));
        let _ = std::fs::write(&out, format!("{actual_json}\n"));
        panic!("drift artifact drifted from {golden_path}; actual written to {out}");
    }
}

#[test]
fn pinned_campaign_decays_recovers_and_matches_goldens() {
    let pinned = run_drift_lab(&pinned_campaign(), None);
    let retrained_cfg =
        DriftLabConfig { retrain: Some(RetrainConfig::default()), ..pinned_campaign() };
    let retrained = run_drift_lab(&retrained_cfg, None);

    // Decay: with the day-0 model pinned, recall never rises and ends
    // far below where it started — the drift schedule really erodes the
    // model's signal across all six epochs.
    let curve = &pinned.curve;
    assert_eq!(curve.entries.len(), 6);
    for pair in curve.entries.windows(2) {
        assert!(
            pair[1].recall <= pair[0].recall,
            "pinned recall rose: epoch {} {} -> epoch {} {}",
            pair[0].epoch,
            pair[0].recall,
            pair[1].epoch,
            pair[1].recall
        );
    }
    let initial = curve.initial_recall();
    let decayed = curve.final_recall();
    assert!(initial > 0.5, "day-0 recall {initial}");
    assert!(initial - decayed >= 0.2, "decay too shallow: {initial} -> {decayed}");

    // The signature-lag contrast holds every epoch: live VirusTotal
    // queries at episode end never beat end-of-epoch queries.
    for e in &curve.entries {
        assert!(e.vt_recall_live <= e.vt_recall_epoch_end, "epoch {}", e.epoch);
        assert!(e.fpr <= 0.05, "epoch {} fpr {}", e.epoch, e.fpr);
    }

    // Recovery: the shadow loop must promote at least once through the
    // engine's model slot and win back at least half the lost recall in
    // the final epoch.
    let recovered = retrained.curve.final_recall();
    assert!(retrained.ledger.iter().any(|e| e.promoted), "no challenger ever promoted");
    assert!(
        recovered - decayed >= 0.5 * (initial - decayed),
        "recovered {recovered} vs decayed {decayed} (initial {initial})"
    );
    let last = retrained.curve.entries.last().unwrap();
    assert!(last.model_version > 1, "final epoch still served by the day-0 model");

    // Attribution: every alert carries exactly the model generation
    // that served its epoch.
    for (entry, alerts) in retrained.curve.entries.iter().zip(&retrained.epoch_alerts) {
        for a in alerts {
            assert_eq!(
                a.model_version, entry.model_version,
                "epoch {} alert at ts {}",
                entry.epoch, a.ts
            );
        }
    }

    // Goldens: the pinned decay curve and the retrained promotion
    // ledger, byte for byte.
    compare_against_golden(
        &serde_json::to_string_pretty(curve).unwrap(),
        CURVE_GOLDEN,
        "drift-curve-actual.json",
    );
    let rows: Vec<LedgerRow> = retrained
        .ledger
        .iter()
        .map(|e| LedgerRow {
            epoch: e.epoch,
            model_version: e.model_version_after,
            recall_margin: e.recall_margin,
            promoted: e.promoted,
        })
        .collect();
    compare_against_golden(
        &serde_json::to_string_pretty(&rows).unwrap(),
        LEDGER_GOLDEN,
        "drift-ledger-actual.json",
    );
}

// ---------------------------------------------------------------------
// 3. Differential: the shadow loop is observation-only.
// ---------------------------------------------------------------------

fn assert_alerts_bit_identical(a: &[Vec<Alert>], b: &[Vec<Alert>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: epoch count");
    for (epoch, (xs, ys)) in a.iter().zip(b).enumerate() {
        assert_eq!(xs.len(), ys.len(), "{what}: alert count in epoch {epoch}");
        for (x, y) in xs.iter().zip(ys) {
            assert_eq!(x.client, y.client, "{what} epoch {epoch}");
            assert_eq!(x.conversation_id, y.conversation_id, "{what} epoch {epoch}");
            assert_eq!(x.ts.to_bits(), y.ts.to_bits(), "{what} epoch {epoch}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what} epoch {epoch}");
            assert_eq!(x.trigger_host, y.trigger_host, "{what} epoch {epoch}");
            assert_eq!(x.trigger_payload, y.trigger_payload, "{what} epoch {epoch}");
            assert_eq!(x.conversation_size, y.conversation_size, "{what} epoch {epoch}");
            assert_eq!(x.model_version, y.model_version, "{what} epoch {epoch}");
        }
    }
}

#[test]
fn disabled_promotion_is_bit_identical_to_no_shadow_loop() {
    let small = DriftLabConfig {
        schedule: DriftScheduleConfig {
            seed: 42,
            scale: 0.02,
            epochs: 3,
            ..DriftScheduleConfig::default()
        },
        train_scale: 0.02,
        ..DriftLabConfig::default()
    };
    for shards in [1usize, 4] {
        let base = DriftLabConfig { shards, ..small.clone() };
        let champion_only = run_drift_lab(&base, None);
        let shadow_disabled = DriftLabConfig {
            retrain: Some(RetrainConfig {
                policy: PromotionPolicy::NEVER,
                ..RetrainConfig::default()
            }),
            ..base
        };
        let shadowed = run_drift_lab(&shadow_disabled, None);

        // The shadow loop ran (it trained and scored challengers)…
        assert_eq!(shadowed.ledger.len(), 2, "{shards} shards");
        assert!(shadowed.ledger.iter().all(|e| !e.promoted), "{shards} shards");
        // …but never touched the live path: alerts and the forensic
        // report are bit-identical to the run without it.
        assert_alerts_bit_identical(
            &champion_only.epoch_alerts,
            &shadowed.epoch_alerts,
            &format!("{shards} shards"),
        );
        assert_eq!(
            serde_json::to_string(&champion_only.report).unwrap(),
            serde_json::to_string(&shadowed.report).unwrap(),
            "forensic report at {shards} shards"
        );
    }
}

// ---------------------------------------------------------------------
// 4. Properties: schedule purity and promotion monotonicity.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn drift_schedules_are_byte_identical_per_seed(
        seed in any::<u64>(),
        epochs in 2usize..5,
        epoch in 0usize..5,
    ) {
        let epoch = epoch % epochs;
        let config = DriftScheduleConfig {
            seed,
            scale: 0.01,
            epochs,
            ..DriftScheduleConfig::default()
        };
        let a = DriftSchedule::new(config.clone()).epoch_batch(epoch);
        let b = DriftSchedule::new(config).epoch_batch(epoch);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn promotion_is_monotone_in_margin_and_threshold(
        margin in -1.0f64..1.0,
        fpr_reg in -1.0f64..1.0,
        min_gain in -1.0f64..1.0,
        max_fpr in -1.0f64..1.0,
        slack in 0.0f64..1.0,
    ) {
        let policy = PromotionPolicy { min_recall_gain: min_gain, max_fpr_regression: max_fpr };
        if policy.decide(margin, fpr_reg) {
            // Monotone in the observed margins: a strictly better
            // challenger is always still promoted…
            prop_assert!(policy.decide(margin + slack, fpr_reg));
            prop_assert!(policy.decide(margin, fpr_reg - slack));
            // …and monotone in the policy: any laxer threshold promotes
            // too (promoted at margin m ⇒ promoted at every
            // min_recall_gain below the current one).
            let laxer = PromotionPolicy {
                min_recall_gain: min_gain - slack,
                max_fpr_regression: max_fpr + slack,
            };
            prop_assert!(laxer.decide(margin, fpr_reg));
        }
    }
}
