//! Cross-crate integration: synthetic episode → pcap bytes → packet
//! parsing → TCP reassembly → HTTP transactions → WCG → features →
//! classifier — the full path a deployment would take.

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::features;
use dynaminer::wcg::Wcg;
use nettrace::pcap::PcapReader;
use nettrace::TransactionExtractor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen::episode_pcap;
use synthtraffic::{BenignScenario, EkFamily};

fn reparse(ep: &synthtraffic::Episode) -> Vec<nettrace::HttpTransaction> {
    let bytes = episode_pcap(ep).expect("serialize");
    let packets = PcapReader::new(bytes.as_slice()).unwrap().collect_packets().unwrap();
    TransactionExtractor::extract(&packets).unwrap()
}

#[test]
fn features_survive_the_pcap_roundtrip() {
    // Features extracted from the direct transaction stream and from the
    // pcap-reparsed stream must agree on everything that does not depend
    // on declared-but-unmaterialized payload bytes.
    let mut rng = StdRng::seed_from_u64(99);
    for family in [EkFamily::Angler, EkFamily::Rig, EkFamily::Goon] {
        let ep = generate_infection(&mut rng, family, 1.4e9);
        let direct = features::extract(&Wcg::from_transactions(&ep.transactions));
        let reparsed = features::extract(&Wcg::from_transactions(&reparse(&ep)));
        for name in [
            "order",
            "size",
            "conversation-length",
            "gets",
            "posts",
            "http-30xs",
            "referrer-ctrs",
            "no-referrer-ctrs",
            "diameter",
            "avg-betweenness-centrality",
            "avg-pagerank",
            "reciprocity",
        ] {
            let (a, b) = (direct.get(name), reparsed.get(name));
            assert!(
                (a - b).abs() < 1e-9,
                "{family}: feature {name} differs: direct {a} vs reparsed {b}"
            );
        }
        // Temporal features agree to pcap timestamp precision.
        for name in ["duration", "avg-inter-transact-time"] {
            let (a, b) = (direct.get(name), reparsed.get(name));
            assert!((a - b).abs() < 0.05, "{family}: {name}: {a} vs {b}");
        }
    }
}

#[test]
fn classifier_trained_on_direct_transactions_detects_reparsed_pcaps() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..40 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    let clf = Classifier::fit_default(&data, 11);

    let mut eval_rng = StdRng::seed_from_u64(1234);
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..10 {
        let inf = generate_infection(&mut eval_rng, EkFamily::ALL[i % 10], 1.45e9);
        let ben =
            generate_benign(&mut eval_rng, BenignScenario::WEIGHTED[i % 8].0, 1.45e9);
        for (ep, label) in [(inf, true), (ben, false)] {
            let txs = reparse(&ep);
            let wcg = Wcg::from_transactions(&txs);
            correct += usize::from(clf.predict_wcg(&wcg) == label);
            total += 1;
        }
    }
    assert!(correct as f64 / total as f64 >= 0.85, "{correct}/{total}");
}

#[test]
fn obfuscated_redirects_are_recovered_after_reparse() {
    // Find an episode whose redirect chain includes an obfuscated hop and
    // confirm the chain survives serialization + reparsing.
    let mut rng = StdRng::seed_from_u64(55);
    let mut checked = 0;
    for _ in 0..40 {
        let ep = generate_infection(&mut rng, EkFamily::Goon, 1.4e9);
        let has_obfuscated = ep
            .transactions
            .iter()
            .any(|t| String::from_utf8_lossy(&t.body_preview).contains("atob("));
        if !has_obfuscated {
            continue;
        }
        let direct = Wcg::from_transactions(&ep.transactions);
        let reparsed = Wcg::from_transactions(&reparse(&ep));
        assert_eq!(direct.redirects.total, reparsed.redirects.total);
        assert_eq!(direct.redirects.max_chain, reparsed.redirects.max_chain);
        assert!(direct.redirects.total > 0);
        checked += 1;
        if checked >= 3 {
            return;
        }
    }
    assert!(checked > 0, "no obfuscated episode found in 40 draws");
}

#[test]
fn corpus_scale_statistics_hold_end_to_end() {
    // A scaled-down ground-truth corpus keeps the paper's directional
    // contrasts after the full pcap pipeline.
    let corpus = synthtraffic::ground_truth(21, 0.03);
    let mut infection_hosts = Vec::new();
    let mut benign_hosts = Vec::new();
    for ep in corpus.iter().take(60) {
        let wcg = Wcg::from_transactions(&reparse(ep));
        if ep.is_infection() {
            infection_hosts.push(wcg.remote_host_count());
        } else {
            benign_hosts.push(wcg.remote_host_count());
        }
    }
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
    assert!(
        mean(&infection_hosts) > mean(&benign_hosts),
        "infection {} vs benign {}",
        mean(&infection_hosts),
        mean(&benign_hosts)
    );
}
