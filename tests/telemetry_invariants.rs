//! Property-based invariants for the telemetry crate: counter
//! monotonicity, histogram merge algebra (associative + commutative +
//! count-additive), and thread-count invariance of snapshots — the
//! properties the deterministic parallel pipeline relies on.

use proptest::collection::vec;
use proptest::prelude::*;

use telemetry::{Counter, Histogram, LocalHistogram, Registry, LATENCY_BOUNDS_NS};

/// Random strictly-increasing bucket bounds.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    vec(1u64..100_000, 1..10).prop_map(|mut b| {
        b.sort_unstable();
        b.dedup();
        b
    })
}

fn filled(bounds: &[u64], values: &[u64]) -> LocalHistogram {
    let mut h = LocalHistogram::new(bounds);
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn counters_are_monotone_under_any_add_sequence(adds in vec(0u64..1_000_000, 0..50)) {
        let c = Counter::new();
        let mut last = c.get();
        let mut expected = 0u64;
        for n in adds {
            c.add(n);
            expected += n;
            let now = c.get();
            prop_assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        prop_assert_eq!(c.get(), expected);
    }

    #[test]
    fn histogram_merge_is_commutative(
        bounds in arb_bounds(),
        xs in vec(0u64..1_000_000, 0..40),
        ys in vec(0u64..1_000_000, 0..40),
    ) {
        let a = filled(&bounds, &xs);
        let b = filled(&bounds, &ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        bounds in arb_bounds(),
        xs in vec(0u64..1_000_000, 0..30),
        ys in vec(0u64..1_000_000, 0..30),
        zs in vec(0u64..1_000_000, 0..30),
    ) {
        let (a, b, c) = (filled(&bounds, &xs), filled(&bounds, &ys), filled(&bounds, &zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_adds_counts_and_sums(
        bounds in arb_bounds(),
        xs in vec(0u64..1_000_000, 0..40),
        ys in vec(0u64..1_000_000, 0..40),
    ) {
        let a = filled(&bounds, &xs);
        let b = filled(&bounds, &ys);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        prop_assert_eq!(merged.sum(), a.sum() + b.sum());
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
    }

    #[test]
    fn snapshot_merge_is_commutative_and_counts_add(
        xs in vec(0u64..1_000_000, 0..30),
        ys in vec(0u64..1_000_000, 0..30),
        ca in 0u64..1_000_000,
        cb in 0u64..1_000_000,
    ) {
        let build = |values: &[u64], c: u64| {
            let reg = Registry::new();
            reg.counter("events_total", "").add(c);
            let h = reg.histogram("lat_ns", "", &[100, 10_000]);
            for &v in values {
                h.observe(v);
            }
            reg.snapshot()
        };
        let a = build(&xs, ca);
        let b = build(&ys, cb);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.counter("events_total"), ca + cb);
        prop_assert_eq!(ab.histogram_count("lat_ns"), (xs.len() + ys.len()) as u64);
    }

    #[test]
    fn snapshot_totals_are_thread_count_invariant(
        values in vec(0u64..5_000_000_000, 1..120),
    ) {
        // The same observation workload, split across 1, 2 and 8
        // threads (shared atomic handles in one run, per-thread local
        // shards in the other), must yield byte-identical snapshots:
        // all histogram state is integer, so accumulation order cannot
        // leak into the totals.
        let run_shared = |threads: usize| {
            let reg = Registry::new();
            let c = reg.counter("observed_total", "");
            let h = reg.histogram("v_ns", "", &LATENCY_BOUNDS_NS);
            let chunk = values.len().div_ceil(threads);
            std::thread::scope(|s| {
                for part in values.chunks(chunk) {
                    let (c, h) = (c.clone(), h.clone());
                    s.spawn(move || {
                        for &v in part {
                            h.observe(v);
                            c.inc();
                        }
                    });
                }
            });
            reg.snapshot()
        };
        let run_sharded = |threads: usize| {
            let reg = Registry::new();
            let c = reg.counter("observed_total", "");
            let h = reg.histogram("v_ns", "", &LATENCY_BOUNDS_NS);
            let chunk = values.len().div_ceil(threads);
            let shards = std::thread::scope(|s| {
                let handles: Vec<_> = values
                    .chunks(chunk)
                    .map(|part| {
                        let shard = LocalHistogram::shard_of(&h);
                        s.spawn(move || {
                            let mut shard = shard;
                            for &v in part {
                                shard.observe(v);
                            }
                            (shard, part.len() as u64)
                        })
                    })
                    .collect();
                handles.into_iter().map(|j| j.join().unwrap()).collect::<Vec<_>>()
            });
            for (shard, n) in &shards {
                h.record_local(shard);
                c.add(*n);
            }
            reg.snapshot()
        };
        let reference = run_shared(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(&run_shared(threads), &reference);
            prop_assert_eq!(&run_sharded(threads), &reference);
        }
        prop_assert_eq!(reference.counter("observed_total"), values.len() as u64);
        prop_assert_eq!(reference.histogram_count("v_ns"), values.len() as u64);
    }

    #[test]
    fn histogram_count_equals_bucket_total(
        bounds in arb_bounds(),
        values in vec(0u64..1_000_000, 0..60),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h", "", &bounds);
        for &v in &values {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hist = &snap.histograms["h"];
        prop_assert_eq!(hist.buckets.len(), hist.bounds.len() + 1);
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
        prop_assert_eq!(hist.count, values.len() as u64);
        prop_assert_eq!(hist.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn atomic_and_local_histograms_agree(
        bounds in arb_bounds(),
        values in vec(0u64..1_000_000, 0..60),
    ) {
        let shared = Histogram::new(&bounds);
        let mut local = LocalHistogram::new(&bounds);
        for &v in &values {
            shared.observe(v);
            local.observe(v);
        }
        prop_assert_eq!(shared.count(), local.count());
        prop_assert_eq!(shared.sum(), local.sum());
        // Folding the local shard doubles the shared totals exactly.
        shared.record_local(&local);
        prop_assert_eq!(shared.count(), 2 * local.count());
        prop_assert_eq!(shared.sum(), 2 * local.sum());
    }
}
