//! End-to-end coverage of the on-the-wire stage sequence (PAPER.md
//! §IV): a synthetic EK episode is fed transaction-by-transaction
//! through the detector's `SessionTracker` clustering, and the
//! clue → retrospective-WCG-rebuild → re-classify-on-growth sequence
//! is asserted through the telemetry counters after every step.

use std::net::Ipv4Addr;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use nettrace::http::{HeaderMap, Method};
use nettrace::payload::PayloadClass;
use nettrace::reassembly::Endpoint;
use nettrace::HttpTransaction;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};
use telemetry::Registry;

#[allow(clippy::too_many_arguments)]
fn tx(
    ts: f64,
    host: &str,
    uri: &str,
    method: Method,
    status: u16,
    class: PayloadClass,
    size: usize,
    referer: Option<&str>,
    location: Option<&str>,
) -> HttpTransaction {
    let mut req_headers = HeaderMap::new();
    req_headers.append("Host", host);
    if let Some(r) = referer {
        req_headers.append("Referer", r);
    }
    let mut resp_headers = HeaderMap::new();
    if let Some(l) = location {
        resp_headers.append("Location", l);
    }
    HttpTransaction {
        seq: 0,
        ts,
        resp_ts: ts + 0.05,
        client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 9), 51000),
        server: Endpoint::new(Ipv4Addr::new(203, 0, 113, 44), 80),
        host: host.to_string(),
        method,
        uri: uri.to_string(),
        req_headers,
        status,
        resp_headers,
        payload_class: class,
        payload_size: size,
        body_preview: Vec::new(),
        payload_digest: 7,
    }
}

/// A hand-built exploit-kit episode: landing page, two redirect hops,
/// an executable drop, then post-infection traffic — the paper's
/// canonical sequence.
fn ek_episode() -> Vec<HttpTransaction> {
    vec![
        tx(1.0, "landing.example", "/", Method::Get, 200, PayloadClass::Html, 900, None, None),
        tx(
            2.0, "landing.example", "/go", Method::Get, 302, PayloadClass::Empty, 0,
            Some("http://landing.example/"), Some("http://hop.example/l"),
        ),
        tx(
            3.0, "hop.example", "/l", Method::Get, 302, PayloadClass::Empty, 0,
            Some("http://landing.example/go"), Some("http://drop.example/gate"),
        ),
        tx(
            4.0, "drop.example", "/payload.exe", Method::Get, 200, PayloadClass::Exe, 4096,
            Some("http://hop.example/l"), None,
        ),
        tx(5.0, "cc.example", "/beacon", Method::Post, 200, PayloadClass::Text, 12, None, None),
    ]
}

fn small_classifier() -> Classifier {
    let mut rng = StdRng::seed_from_u64(3);
    let mut items = Vec::new();
    for i in 0..8 {
        items.push((generate_infection(&mut rng, EkFamily::ALL[i], 1.4e9).transactions, true));
        items.push((generate_benign(&mut rng, BenignScenario::Search, 1.43e9).transactions, false));
    }
    let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
    Classifier::fit_default(&data, 1)
}

#[test]
fn clue_then_retrospective_rebuild_then_reclassify_on_growth() {
    let registry = Registry::new();
    // Alerting disabled (threshold > 1) so the conversation keeps
    // growing and every re-classification round is observable.
    let config = DetectorConfig { alert_threshold: 1.1, ..DetectorConfig::default() };
    let mut detector =
        OnTheWireDetector::with_telemetry(small_classifier(), config, &registry);
    let episode = ek_episode();
    let counters = |registry: &Registry| {
        let s = registry.snapshot();
        (
            s.counter("detector_transactions_total"),
            s.counter("detector_clues_total"),
            s.counter("detector_wcg_rebuilds_total"),
            s.counter("detector_reclassifications_total"),
        )
    };

    // Landing page: clustered, but no redirect chain and a benign
    // payload — the clue gate stays shut and no WCG is built.
    detector.observe(&episode[0]);
    assert_eq!(counters(&registry), (1, 0, 0, 0));
    assert_eq!(registry.snapshot().gauges["session_conversations_live"], 1);

    // Two redirect hops: still no risky download, still no clue —
    // chain length alone must not trigger classification.
    detector.observe(&episode[1]);
    detector.observe(&episode[2]);
    assert_eq!(counters(&registry), (3, 0, 0, 0));

    // The exe drop completes the chain+download conjunction: the clue
    // fires and the detector goes back in time, rebuilding the WCG
    // over the *whole* conversation so far (all 4 transactions).
    detector.observe(&episode[3]);
    assert_eq!(counters(&registry), (4, 1, 1, 0));
    assert_eq!(
        registry.snapshot().histogram_count("classifier_feature_extraction_ns"),
        1,
        "the rebuild ran one timed feature extraction"
    );
    let conv = detector.tracker().conversations().next().unwrap();
    assert_eq!(conv.transactions.len(), 4, "retrospective WCG spans the full conversation");
    assert!(conv.watched);

    // Post-infection beacon: the watched conversation grew, so it is
    // re-classified (a second rebuild, first re-classification round).
    detector.observe(&episode[4]);
    assert_eq!(counters(&registry), (5, 1, 2, 1));
    // Everything stayed one conversation — the session tracker
    // clustered the whole episode.
    assert_eq!(detector.tracker().conversation_count(), 1);
}

#[test]
fn alert_terminates_the_session_and_stops_reclassification() {
    let registry = Registry::new();
    // Threshold 0 forces the alert on the first classification, which
    // must stop further rebuilds for that conversation.
    let config = DetectorConfig { alert_threshold: 0.0, ..DetectorConfig::default() };
    let mut detector =
        OnTheWireDetector::with_telemetry(small_classifier(), config, &registry);
    let episode = ek_episode();
    let mut alert = None;
    for t in &episode {
        if let Some(a) = detector.observe(t) {
            alert = Some(a);
        }
    }
    let alert = alert.expect("threshold 0 must alert at the clue");
    assert_eq!(alert.conversation_size, 4, "alert fired on the exe drop, over 4 transactions");
    assert_eq!(alert.trigger_host, "drop.example");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("detector_clues_total"), 1);
    assert_eq!(snap.counter("detector_wcg_rebuilds_total"), 1, "no rebuild after the alert");
    assert_eq!(snap.counter("detector_reclassifications_total"), 0);
    assert_eq!(snap.counter("detector_alerts_total"), 1);
    assert_eq!(snap.counter("detector_transactions_total"), 5);
}
