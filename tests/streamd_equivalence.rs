//! Sharded stream engine vs. the single-threaded detector.
//!
//! The engine's determinism contract (DESIGN.md §12): with
//! `retention: None` and the state-exhaustion caps not binding, a
//! `StreamEngine` fed a `(ts, seq)`-sorted stream emits the exact same
//! alert sequence as one `OnTheWireDetector` fed the same stream — at
//! any shard count and any worker-thread timing. These tests pin that
//! contract, the graceful-drain zero-loss invariant, and the sharded
//! forensic report's field-for-field equality.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{Alert, DetectorConfig, OnTheWireDetector};
use nettrace::HttpTransaction;
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamd::{
    analyze_transactions_sharded, BackpressurePolicy, StreamConfig, StreamEngine,
};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 11)
    })
}

/// Builds an interleaved multi-client stream: episodes start offset by
/// 37 s so their transactions overlap in time, then the merge is
/// `(ts)`-sorted and numbered — exactly what a capture replay feeds.
fn build_stream(seed: u64, episodes: &[(bool, usize)]) -> Vec<HttpTransaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream: Vec<HttpTransaction> = Vec::new();
    for (i, &(infected, idx)) in episodes.iter().enumerate() {
        let t0 = 1.4e9 + i as f64 * 37.0;
        if infected {
            stream.extend(generate_infection(&mut rng, EkFamily::ALL[idx % 10], t0).transactions);
        } else {
            stream.extend(
                generate_benign(&mut rng, BenignScenario::WEIGHTED[idx % 8].0, t0).transactions,
            );
        }
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    nettrace::assign_seq(&mut stream);
    stream
}

fn single_threaded_alerts(stream: &[HttpTransaction]) -> Vec<Alert> {
    let mut det = OnTheWireDetector::new(classifier().clone(), DetectorConfig::default());
    for tx in stream {
        det.observe(tx);
    }
    det.alerts().to_vec()
}

macro_rules! prop_assert_alerts_eq {
    ($got:expr, $want:expr, $shards:expr) => {
        prop_assert_eq!($got.len(), $want.len(), "alert count at {} shards", $shards);
        for (a, b) in $got.iter().zip($want.iter()) {
            prop_assert_eq!(a.client, b.client, "client at {} shards", $shards);
            prop_assert_eq!(
                a.conversation_id, b.conversation_id,
                "conversation id at {} shards", $shards
            );
            prop_assert_eq!(a.ts.to_bits(), b.ts.to_bits(), "ts at {} shards", $shards);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "score at {} shards", $shards);
            prop_assert_eq!(&a.trigger_host, &b.trigger_host, "host at {} shards", $shards);
            prop_assert_eq!(
                a.trigger_payload, b.trigger_payload,
                "payload at {} shards", $shards
            );
            prop_assert_eq!(
                a.conversation_size, b.conversation_size,
                "size at {} shards", $shards
            );
        }
    };
}

proptest! {
    /// The acceptance property: arbitrary interleaved benign+infection
    /// streams, shards ∈ {1, 2, 8}, tiny queues and batches (so the
    /// feeder and workers genuinely interleave and block) — the merged
    /// alert stream equals the single-threaded one, field for field.
    #[test]
    fn sharded_engine_matches_single_threaded_detector(
        seed in any::<u64>(),
        episodes in vec((any::<bool>(), 0usize..16), 1..6),
    ) {
        let stream = build_stream(seed, &episodes);
        let reference = single_threaded_alerts(&stream);
        for shards in [1usize, 2, 8] {
            let mut engine = StreamEngine::new(
                classifier().clone(),
                DetectorConfig::default(),
                StreamConfig {
                    shards,
                    queue_capacity: 16,
                    batch_size: 3,
                    backpressure: BackpressurePolicy::Block,
                },
            );
            let report = engine.process(stream.iter().cloned());
            prop_assert_eq!(report.dropped, 0, "blocking policy never drops");
            prop_assert_eq!(report.enqueued, report.processed, "drain loses nothing");
            prop_assert_alerts_eq!(report.alerts, reference, shards);
        }
    }
}

#[test]
fn drain_flushes_every_queue_with_zero_loss() {
    let stream = build_stream(3, &[(true, 0), (false, 1), (true, 2), (false, 5)]);
    let registry = telemetry::Registry::new();
    let shards = 4usize;
    let mut engine = StreamEngine::with_telemetry(
        classifier().clone(),
        DetectorConfig::default(),
        StreamConfig {
            shards,
            // Queues far smaller than the stream: input ends while they
            // are still full, so the drain path does real flushing.
            queue_capacity: 4,
            batch_size: 2,
            backpressure: BackpressurePolicy::Block,
        },
        &registry,
    );
    let report = engine.process(stream.iter().cloned());
    assert_eq!(report.enqueued, stream.len() as u64, "every transaction was offered");
    assert_eq!(report.dropped, 0, "blocking policy drops nothing");
    assert_eq!(report.processed, report.enqueued, "enqueued == processed + dropped");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("streamd_enqueued_total"), report.enqueued);
    assert_eq!(snap.counter("streamd_processed_total"), report.processed);
    assert_eq!(snap.counter("streamd_dropped_total"), 0);
    let per_shard: u64 =
        (0..shards).map(|i| snap.counter(&format!("streamd_shard{i}_processed_total"))).sum();
    assert_eq!(per_shard, report.processed, "per-shard counters sum to the total");
    for i in 0..shards {
        assert_eq!(
            snap.gauges[&format!("streamd_shard{i}_queue_depth")],
            0,
            "shard {i} queue drained"
        );
    }
    // The detectors saw everything the feeder offered (minus trusted
    // weed-out, which is why processed >= transactions_seen).
    let seen: usize = engine.detectors().iter().map(|d| d.transactions_seen()).sum();
    assert!(seen as u64 <= report.processed);
    assert_eq!(
        snap.counter("streamd_backpressure_waits_total"),
        report.backpressure_waits
    );
}

#[test]
fn drop_newest_accounting_balances() {
    let stream = build_stream(5, &[(true, 1), (true, 4), (false, 2), (false, 6)]);
    let mut engine = StreamEngine::new(
        classifier().clone(),
        DetectorConfig::default(),
        StreamConfig {
            shards: 2,
            queue_capacity: 2,
            batch_size: 1,
            backpressure: BackpressurePolicy::DropNewest,
        },
    );
    let report = engine.process(stream.iter().cloned());
    assert_eq!(report.enqueued, stream.len() as u64);
    assert_eq!(
        report.enqueued,
        report.processed + report.dropped,
        "every offered transaction is either processed or counted dropped"
    );
    assert_eq!(report.backpressure_waits, 0, "drop policy never blocks");
}

/// Mid-stream shutdown: ending a `process` call early (stream split in
/// half) drains gracefully and keeps detector state, so a second call
/// continues the same sessions — the concatenated alert stream equals
/// one uninterrupted run.
#[test]
fn mid_stream_drain_keeps_sessions_across_process_calls() {
    let stream = build_stream(8, &[(true, 3), (false, 0), (true, 7)]);
    let reference = single_threaded_alerts(&stream);
    let mid = stream.len() / 2;
    let mut engine = StreamEngine::new(
        classifier().clone(),
        DetectorConfig::default(),
        StreamConfig { shards: 2, ..StreamConfig::default() },
    );
    let first = engine.process(stream[..mid].iter().cloned());
    let second = engine.process(stream[mid..].iter().cloned());
    assert_eq!(first.dropped + second.dropped, 0);
    assert_eq!(
        first.enqueued + second.enqueued,
        first.processed + second.processed
    );
    let got: Vec<&Alert> = first.alerts.iter().chain(&second.alerts).collect();
    assert_eq!(got.len(), reference.len());
    for (a, b) in got.iter().zip(&reference) {
        assert_eq!(a.conversation_id, b.conversation_id);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.ts.to_bits(), b.ts.to_bits());
    }
}

/// `replay --shards N` bit-identity: the sharded forensic report equals
/// the single-threaded one field for field, including serialized form.
#[test]
fn sharded_forensic_report_is_bit_identical() {
    let stream =
        build_stream(9, &[(true, 0), (false, 3), (true, 5), (false, 1), (true, 9), (false, 7)]);
    let single = dynaminer::forensic::analyze_transactions(
        &stream,
        classifier().clone(),
        DetectorConfig::default(),
    );
    let single_json = serde_json::to_string(&single).unwrap();
    for shards in [1usize, 2, 8] {
        let sharded = analyze_transactions_sharded(
            &stream,
            classifier().clone(),
            DetectorConfig::default(),
            StreamConfig { shards, ..StreamConfig::default() },
        );
        assert_eq!(sharded.transactions, single.transactions, "{shards} shards");
        assert_eq!(sharded.alerts, single.alerts, "{shards} shards");
        assert_eq!(sharded.downloads.len(), single.downloads.len(), "{shards} shards");
        assert_eq!(
            sharded.conversations.len(),
            single.conversations.len(),
            "{shards} shards"
        );
        for (a, b) in sharded.conversations.iter().zip(&single.conversations) {
            assert_eq!(a.id, b.id, "{shards} shards");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{shards} shards");
            assert_eq!(a.transactions, b.transactions, "{shards} shards");
            assert_eq!(a.alerted, b.alerted, "{shards} shards");
            assert_eq!(a.hosts, b.hosts, "{shards} shards");
        }
        let json = serde_json::to_string(&sharded).unwrap();
        assert_eq!(json, single_json, "byte-identical report at {shards} shards");
    }
}

/// The shard hash is a pure function of the client address: every
/// transaction of a client lands on the same shard, across engines.
#[test]
fn shard_assignment_is_stable() {
    use std::net::Ipv4Addr;
    for shards in [1usize, 2, 7, 8] {
        for raw in [0u32, 1, 0x0a00_0001, 0xc0a8_0101, u32::MAX] {
            let addr = Ipv4Addr::from(raw);
            let s = streamd::shard_of(addr, shards);
            assert!(s < shards);
            assert_eq!(s, streamd::shard_of(addr, shards), "pure function");
        }
    }
}
