//! Content-coding parity: the decode gate must make response-body
//! compression invisible to everything downstream of the extractor.
//!
//! The same episode is written to pcap three more times with every
//! body-carrying response re-encoded as `gzip`, `x-gzip`, and `deflate`
//! (the wire body is compressed by `pcapgen` per the header, exactly as
//! a server would). Extraction must then yield `HttpTransaction`s that
//! are byte-identical to the plain run — bodies, payload sizes, redirect
//! targets, everything except the `Content-Encoding` line itself — and a
//! detector replaying them must raise identical alerts. This is the
//! regression fence for the pre-fix behavior where `deflate` bodies
//! passed through compressed and redirect evidence inside them was
//! invisible to mining.

use proptest::prelude::*;

use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use nettrace::http::HeaderMap;
use nettrace::{HttpTransaction, TransactionExtractor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::episode::generate_infection;
use synthtraffic::{EkFamily, Episode};

/// The episode's pcap with every body-carrying response forced to the
/// given content coding (`None` = plain). Existing `Content-Encoding`
/// lines are dropped first, so the three variants differ only in that
/// one header.
fn pcap_with_coding(ep: &Episode, coding: Option<&str>) -> Vec<u8> {
    let mut ep = ep.clone();
    for tx in &mut ep.transactions {
        let mut headers: HeaderMap = tx
            .resp_headers
            .iter()
            .filter(|(n, _)| !n.eq_ignore_ascii_case("Content-Encoding"))
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        if let Some(c) = coding {
            // Synthetic episodes carry the full body in `body_preview`;
            // that is exactly what `pcapgen` writes (and re-encodes) on
            // the wire.
            if !tx.body_preview.is_empty() {
                headers.append("Content-Encoding", c);
            }
        }
        tx.resp_headers = headers;
    }
    synthtraffic::pcapgen::episode_pcap(&ep).unwrap()
}

fn extract(pcap: &[u8]) -> Vec<HttpTransaction> {
    let packets = nettrace::capture::read_packets(pcap).unwrap();
    TransactionExtractor::extract(&packets).unwrap()
}

/// Serialized transactions with the two headers that legitimately
/// describe the *wire* form removed: `Content-Encoding` (the coding
/// under test) and `Content-Length` (rewritten on the wire to the coded
/// body's length). Every other byte — decoded body, payload size and
/// digest, redirect evidence — must be identical across codings.
fn normalized(txs: &[HttpTransaction]) -> String {
    let stripped: Vec<HttpTransaction> = txs
        .iter()
        .map(|tx| {
            let mut tx = tx.clone();
            tx.resp_headers = tx
                .resp_headers
                .iter()
                .filter(|(n, _)| {
                    !n.eq_ignore_ascii_case("Content-Encoding")
                        && !n.eq_ignore_ascii_case("Content-Length")
                })
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect();
            tx
        })
        .collect();
    serde_json::to_string(&stripped).unwrap()
}

/// A small but real classifier, trained once per process.
fn parity_classifier() -> &'static dynaminer::classifier::Classifier {
    static CLF: std::sync::OnceLock<dynaminer::classifier::Classifier> =
        std::sync::OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(17);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..8 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i], 1.4e9).transactions,
                true,
            ));
            items.push((
                synthtraffic::benign::generate_benign(
                    &mut rng,
                    synthtraffic::BenignScenario::WEIGHTED[i % 8].0,
                    1.43e9,
                )
                .transactions,
                false,
            ));
        }
        let data = dynaminer::classifier::build_dataset(
            items.iter().map(|(t, l)| (t.as_slice(), *l)),
        );
        dynaminer::classifier::Classifier::fit_default(&data, 13)
    })
}

/// Serialized alert log of a detector replay over the transactions.
fn alert_log(txs: &[HttpTransaction]) -> String {
    let mut det =
        OnTheWireDetector::new(parity_classifier().clone(), DetectorConfig::default());
    let mut alerts = Vec::new();
    for tx in txs {
        if let Some(a) = det.observe(tx) {
            alerts.push(a);
        }
    }
    serde_json::to_string(&alerts).unwrap()
}

proptest! {
    #[test]
    fn content_codings_are_invisible_downstream(
        seed in 0u64..1_000_000,
        fam_idx in 0usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ep = generate_infection(&mut rng, EkFamily::ALL[fam_idx], 1.4e9);

        let plain = extract(&pcap_with_coding(&ep, None));
        prop_assert!(!plain.is_empty(), "episode must extract transactions");
        let plain_norm = normalized(&plain);
        let plain_alerts = alert_log(&plain);

        for coding in ["gzip", "x-gzip", "deflate"] {
            let coded = extract(&pcap_with_coding(&ep, Some(coding)));
            prop_assert_eq!(
                &normalized(&coded),
                &plain_norm,
                "{} bodies must decode to byte-identical transactions",
                coding
            );
            prop_assert_eq!(
                &alert_log(&coded),
                &plain_alerts,
                "{} bodies must produce identical alerts",
                coding
            );
        }
    }
}
