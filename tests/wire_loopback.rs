//! Loopback parity: the wire ingress vs offline pcap analysis.
//!
//! The tentpole claim of the wirefront subsystem is parity by
//! construction — traffic observed on the wire produces the same
//! alerts and the same `ForensicReport` as offline analysis of a
//! capture of the same conversations. These tests hold that claim
//! end-to-end with *real sockets*: a replay origin server, real client
//! connections driven through the inline forward proxy (PROXY-protocol
//! v1 preserving the episode's true endpoints), and the run loop
//! feeding a sharded `StreamEngine` — compared field-for-field against
//! `streamd` analysis of the equivalent pcap bytes.
//!
//! Also pinned here: the zero-loss graceful drain
//! (`enqueued == processed + dropped` over everything the source
//! emitted) when the stop flag latches mid-stream, and the capture
//! source's parity through the same run loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::DetectorConfig;
use dynaminer::forensic::ForensicReport;
use nettrace::wiretap::TapConfig;
use nettrace::{HttpTransaction, IngestReport, SpanPipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamd::{analyze_transactions_sharded, StreamConfig, StreamEngine};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::wire::{
    drive_episodes, episodes_pcap, merged_wire_transactions, wire_episode_set, OriginServer,
};
use synthtraffic::{BenignScenario, EkFamily};
use wirefront::{run, CaptureConfig, CaptureSource, ProxyConfig, ProxySource, RunOptions};

const SHARDS: usize = 2;

fn classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 11)
    })
}

fn detector_config() -> DetectorConfig {
    DetectorConfig { scoring_threads: 1, ..DetectorConfig::default() }
}

fn stream_config() -> StreamConfig {
    StreamConfig { shards: SHARDS, ..StreamConfig::default() }
}

/// Offline leg: lenient extraction of the episode pcap, analyzed by
/// the sharded engine — the exact path `dynaminer replay --shards N`
/// takes.
fn offline_report(episodes_pcap_bytes: &[u8]) -> (ForensicReport, usize) {
    let mut ingest = IngestReport::new();
    let txs = SpanPipeline::new().extract_lenient(episodes_pcap_bytes, &mut ingest);
    let report =
        analyze_transactions_sharded(&txs, classifier().clone(), detector_config(), stream_config());
    (report, txs.len())
}

/// Strips the legs' out-of-band fields (`ingest` counts different
/// units per source; `stats` needs a registry) and compares the rest
/// of the two reports field-for-field via their JSON forms.
fn assert_reports_equal(mut wire: ForensicReport, mut offline: ForensicReport) {
    wire.ingest = None;
    offline.ingest = None;
    wire.stats = None;
    offline.stats = None;
    let wire_json = serde_json::to_string_pretty(&wire).expect("serialize wire report");
    let offline_json =
        serde_json::to_string_pretty(&offline).expect("serialize offline report");
    assert_eq!(wire_json, offline_json, "wire and offline forensic reports diverge");
}

#[test]
fn proxy_loopback_matches_offline_pcap_analysis() {
    let episodes = wire_episode_set(31, 2, 2);
    let transactions = merged_wire_transactions(&episodes);
    let pcap = episodes_pcap(&episodes).expect("render episodes pcap");
    let (offline, offline_txs) = offline_report(&pcap);
    assert_eq!(offline_txs, transactions.len(), "offline extraction lost transactions");

    // Wire leg: origin ← proxy ← sequential real clients.
    let origin = OriginServer::start(&transactions).expect("start origin");
    let mut config = ProxyConfig::new(origin.addr());
    config.proxy_protocol = true;
    config.tap = TapConfig { honor_replay_ts: true, ..TapConfig::default() };
    let mut source =
        ProxySource::bind("127.0.0.1:0".parse().unwrap(), config).expect("bind proxy");
    let proxy_addr = source.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let txs = transactions.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let driven = drive_episodes(proxy_addr, &txs, true).expect("drive episodes");
            stop.store(true, Ordering::SeqCst);
            driven
        })
    };

    let mut engine = StreamEngine::new(classifier().clone(), detector_config(), stream_config());
    let summary = run(
        &mut source,
        &mut engine,
        &stop,
        RunOptions { poll_wait_ms: 5, scoring_threads: 1, ..RunOptions::default() },
    )
    .expect("wire run");
    let driven = driver.join().expect("driver thread");
    origin.stop();

    // Zero-loss accounting over everything the clients sent.
    assert_eq!(driven, transactions.len() as u64);
    assert_eq!(summary.enqueued, driven, "proxy lost or invented transactions");
    assert_eq!(summary.enqueued, summary.processed + summary.dropped);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.stats.connections, driven, "one client connection per transaction");

    assert_reports_equal(summary.report, offline);
}

#[test]
fn capture_tail_through_run_loop_matches_offline_analysis() {
    let episodes = wire_episode_set(32, 2, 1);
    let pcap = episodes_pcap(&episodes).expect("render episodes pcap");
    let (offline, offline_txs) = offline_report(&pcap);

    let path = std::env::temp_dir()
        .join(format!("wire_loopback_capture_{}.pcap", std::process::id()));
    std::fs::write(&path, &pcap).expect("write pcap");

    let mut source = CaptureSource::pcap_file(&path, false, CaptureConfig::default())
        .expect("open capture");
    let mut engine = StreamEngine::new(classifier().clone(), detector_config(), stream_config());
    let stop = AtomicBool::new(false);
    // Checkpoint aggressively so the segment/snapshot path is exercised
    // by a real source run, not just by the durable replay tests.
    let mut snapshots = 0u64;
    let mut sink = |_snap: &streamd::EngineSnapshot| {
        snapshots += 1;
        Ok(())
    };
    let summary = run(
        &mut source,
        &mut engine,
        &stop,
        RunOptions {
            checkpoint_every: 8,
            snapshot_sink: Some(&mut sink),
            scoring_threads: 1,
            ..RunOptions::default()
        },
    )
    .expect("capture run");
    std::fs::remove_file(&path).ok();

    assert_eq!(summary.enqueued, offline_txs as u64);
    assert_eq!(summary.enqueued, summary.processed + summary.dropped);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.checkpoints, snapshots);
    assert!(snapshots >= 2, "checkpoint cadence never fired (got {snapshots})");
    assert_reports_equal(summary.report, offline);
}

#[test]
fn stop_mid_stream_drains_with_zero_loss() {
    let episodes = wire_episode_set(33, 1, 1);
    let transactions = merged_wire_transactions(&episodes);
    let origin = OriginServer::start(&transactions).expect("start origin");
    let mut config = ProxyConfig::new(origin.addr());
    config.proxy_protocol = true;
    config.tap = TapConfig { honor_replay_ts: true, ..TapConfig::default() };
    let mut source =
        ProxySource::bind("127.0.0.1:0".parse().unwrap(), config).expect("bind proxy");
    let proxy_addr = source.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    // The driver races a mid-stream termination: connections after the
    // drain start are refused, which drive_episodes tolerates only for
    // response reads — so swallow its error like a real client fleet
    // losing its proxy.
    let driver = {
        let txs = transactions.clone();
        thread::spawn(move || drive_episodes(proxy_addr, &txs, true).unwrap_or(0))
    };
    let stopper = {
        let stop = stop.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(40));
            stop.store(true, Ordering::SeqCst);
        })
    };

    let mut engine = StreamEngine::new(classifier().clone(), detector_config(), stream_config());
    let summary = run(
        &mut source,
        &mut engine,
        &stop,
        RunOptions { poll_wait_ms: 5, scoring_threads: 1, ..RunOptions::default() },
    )
    .expect("wire run");
    stopper.join().unwrap();
    driver.join().unwrap();
    origin.stop();

    // Whatever made it onto the wire before the drain is fully
    // accounted: nothing lost between socket and shard.
    assert_eq!(summary.enqueued, summary.processed + summary.dropped);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.enqueued, summary.stats.transactions);
    assert!(summary.enqueued <= transactions.len() as u64);
    assert_eq!(summary.report.transactions as u64, summary.enqueued);
}
