//! Golden-snapshot regression test: the full pipeline over a fixed-seed
//! ground-truth corpus must produce exactly the telemetry counters
//! recorded in `tests/golden/telemetry_scale0.1_seed42.json`.
//!
//! Every counter here is a deterministic function of (seed, scale,
//! detector config): the corpus generator, classifier training, session
//! clustering, clue gates, and alerting are all seeded and
//! thread-count-invariant. Only histogram *sums* carry wall-clock time,
//! so the golden pins counter values and histogram observation counts
//! but never durations.
//!
//! To regenerate after a deliberate behavior change:
//!
//! ```text
//! UPDATE_TELEMETRY_GOLDEN=1 cargo test --test telemetry_golden
//! ```
//!
//! On mismatch the actual snapshot is written next to the target dir as
//! `telemetry-golden-actual.json` so CI can upload it as an artifact and
//! the diff can be inspected without re-running the corpus.

use std::collections::BTreeMap;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use serde::{Deserialize, Serialize};
use telemetry::Registry;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry_scale0.1_seed42.json");

/// The deterministic projection of a [`telemetry::Snapshot`]: everything
/// except histogram sums (which measure wall-clock time).
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Golden {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histogram_counts: BTreeMap<String, u64>,
}

impl Golden {
    fn project(snapshot: &telemetry::Snapshot) -> Golden {
        Golden {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histogram_counts: snapshot
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.count))
                .collect(),
        }
    }
}

fn run_pipeline() -> telemetry::Snapshot {
    // The pinned corpus: scale 0.1, seed 42 — 76 infections + 98 benign.
    let corpus = synthtraffic::ground_truth(42, 0.1);
    let data = build_dataset(
        corpus.iter().map(|ep| (ep.transactions.as_slice(), ep.is_infection())),
    );
    let classifier = Classifier::fit_default(&data, 42);

    // One detector over the whole corpus as a single interleaved stream,
    // with retention low enough that eviction counters move.
    let mut stream: Vec<&nettrace::HttpTransaction> =
        corpus.iter().flat_map(|ep| ep.transactions.iter()).collect();
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let registry = Registry::new();
    let config = DetectorConfig { retention: Some(3600.0), ..DetectorConfig::default() };
    let mut detector = OnTheWireDetector::with_telemetry(classifier, config, &registry);
    for tx in stream {
        detector.observe(tx);
    }
    registry.snapshot()
}

#[test]
fn pipeline_telemetry_matches_golden_snapshot() {
    let snapshot = run_pipeline();
    let actual = Golden::project(&snapshot);

    // Structural sanity independent of the golden file: the corpus must
    // have actually exercised every stage the golden pins.
    assert!(actual.counters["detector_transactions_total"] > 1000);
    assert!(actual.counters["detector_clues_total"] > 0);
    assert!(actual.counters["detector_wcg_rebuilds_total"] > 0);
    assert!(actual.counters["detector_alerts_total"] > 0);
    assert!(actual.counters["session_retention_evictions_total"] > 0);
    assert_eq!(
        actual.histogram_counts["classifier_feature_extraction_ns"],
        actual.counters["detector_wcg_rebuilds_total"],
        "every rebuild times exactly one feature extraction"
    );
    assert_eq!(
        actual.histogram_counts["classifier_scoring_ns"],
        actual.counters["detector_wcg_rebuilds_total"],
        "every rebuild times exactly one scoring call"
    );

    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }

    let golden_json = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN_PATH}: {e} (run with UPDATE_TELEMETRY_GOLDEN=1 to create it)"));
    let golden: Golden =
        serde_json::from_str(&golden_json).expect("golden file must parse as a Golden snapshot");

    if actual != golden {
        // Leave the actual projection on disk for CI artifact upload.
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/target/telemetry-golden-actual.json");
        let json = serde_json::to_string_pretty(&actual).unwrap();
        let _ = std::fs::write(out, json + "\n");
        let diff: Vec<String> = golden
            .counters
            .iter()
            .filter(|(k, v)| actual.counters.get(*k) != Some(v))
            .map(|(k, v)| {
                format!("  {k}: golden {v} vs actual {:?}", actual.counters.get(k))
            })
            .chain(
                actual
                    .counters
                    .keys()
                    .filter(|k| !golden.counters.contains_key(*k))
                    .map(|k| format!("  {k}: not in golden")),
            )
            .collect();
        panic!(
            "telemetry snapshot drifted from {GOLDEN_PATH} \
             (actual written to {out}); counter diff:\n{}",
            diff.join("\n")
        );
    }
}

#[test]
fn pipeline_telemetry_is_reproducible_within_a_run() {
    // Two independent runs of the same seeded pipeline agree exactly —
    // the precondition for the golden file being meaningful at all.
    let a = Golden::project(&run_pipeline());
    let b = Golden::project(&run_pipeline());
    assert_eq!(a, b);
}
