//! Golden-snapshot regression test: the full pipeline over a fixed-seed
//! ground-truth corpus must produce exactly the telemetry counters
//! recorded in `tests/golden/telemetry_scale0.1_seed42.json`.
//!
//! Every counter here is a deterministic function of (seed, scale,
//! detector config): the corpus generator, classifier training, session
//! clustering, clue gates, and alerting are all seeded and
//! thread-count-invariant. Only histogram *sums* carry wall-clock time,
//! so the golden pins counter values and histogram observation counts
//! but never durations.
//!
//! To regenerate after a deliberate behavior change:
//!
//! ```text
//! UPDATE_TELEMETRY_GOLDEN=1 cargo test --test telemetry_golden
//! ```
//!
//! On mismatch the actual snapshot is written next to the target dir as
//! `telemetry-golden-actual.json` so CI can upload it as an artifact and
//! the diff can be inspected without re-running the corpus.

use std::collections::BTreeMap;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector, SpillConfig};
use serde::{Deserialize, Serialize};
use streamd::{
    analyze_transactions_durable, DurableReplayOptions, EngineSnapshot, StreamConfig,
};
use telemetry::Registry;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry_scale0.1_seed42.json");

const DURABLE_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/telemetry_durable_scale0.05_seed42.json"
);

/// The deterministic projection of a [`telemetry::Snapshot`]: everything
/// except histogram sums (which measure wall-clock time).
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Golden {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histogram_counts: BTreeMap<String, u64>,
}

impl Golden {
    fn project(snapshot: &telemetry::Snapshot) -> Golden {
        Golden {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histogram_counts: snapshot
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.count))
                .collect(),
        }
    }
}

fn run_pipeline() -> telemetry::Snapshot {
    // The pinned corpus: scale 0.1, seed 42 — 76 infections + 98 benign.
    let corpus = synthtraffic::ground_truth(42, 0.1);
    let data = build_dataset(
        corpus.iter().map(|ep| (ep.transactions.as_slice(), ep.is_infection())),
    );
    let classifier = Classifier::fit_default(&data, 42);

    // One detector over the whole corpus as a single interleaved stream,
    // with retention low enough that eviction counters move.
    let mut stream: Vec<&nettrace::HttpTransaction> =
        corpus.iter().flat_map(|ep| ep.transactions.iter()).collect();
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let registry = Registry::new();
    let config = DetectorConfig { retention: Some(3600.0), ..DetectorConfig::default() };
    let mut detector = OnTheWireDetector::with_telemetry(classifier, config, &registry);
    for tx in stream {
        detector.observe(tx);
    }
    registry.snapshot()
}

#[test]
fn pipeline_telemetry_matches_golden_snapshot() {
    let snapshot = run_pipeline();
    let actual = Golden::project(&snapshot);

    // Structural sanity independent of the golden file: the corpus must
    // have actually exercised every stage the golden pins.
    assert!(actual.counters["detector_transactions_total"] > 1000);
    assert!(actual.counters["detector_clues_total"] > 0);
    assert!(actual.counters["detector_wcg_rebuilds_total"] > 0);
    assert!(actual.counters["detector_alerts_total"] > 0);
    assert!(actual.counters["session_retention_evictions_total"] > 0);
    assert_eq!(
        actual.histogram_counts["classifier_feature_extraction_ns"],
        actual.counters["detector_wcg_rebuilds_total"],
        "every rebuild times exactly one feature extraction"
    );
    assert_eq!(
        actual.histogram_counts["classifier_scoring_ns"],
        actual.counters["detector_wcg_rebuilds_total"],
        "every rebuild times exactly one scoring call"
    );

    compare_against_golden(&actual, GOLDEN_PATH, "telemetry-golden-actual.json");
}

/// Regenerates (under `UPDATE_TELEMETRY_GOLDEN=1`) or compares `actual`
/// against the golden file at `golden_path`, leaving the actual
/// projection in `target/` as `artifact_name` on mismatch so CI can
/// upload it.
fn compare_against_golden(actual: &Golden, golden_path: &str, artifact_name: &str) {
    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(actual).unwrap();
        std::fs::write(golden_path, json + "\n").unwrap();
        eprintln!("regenerated {golden_path}");
        return;
    }

    let golden_json = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("cannot read {golden_path}: {e} (run with UPDATE_TELEMETRY_GOLDEN=1 to create it)"));
    let golden: Golden =
        serde_json::from_str(&golden_json).expect("golden file must parse as a Golden snapshot");

    if *actual != golden {
        // Leave the actual projection on disk for CI artifact upload.
        let out = format!("{}/target/{artifact_name}", env!("CARGO_MANIFEST_DIR"));
        let json = serde_json::to_string_pretty(actual).unwrap();
        let _ = std::fs::write(&out, json + "\n");
        let diff: Vec<String> = golden
            .counters
            .iter()
            .filter(|(k, v)| actual.counters.get(*k) != Some(v))
            .map(|(k, v)| {
                format!("  {k}: golden {v} vs actual {:?}", actual.counters.get(k))
            })
            .chain(
                actual
                    .counters
                    .keys()
                    .filter(|k| !golden.counters.contains_key(*k))
                    .map(|k| format!("  {k}: not in golden")),
            )
            .collect();
        panic!(
            "telemetry snapshot drifted from {golden_path} \
             (actual written to {out}); counter diff:\n{}",
            diff.join("\n")
        );
    }
}

/// A durable-tier pipeline over the pinned corpus: replay with spill
/// budgets active, crash after the first checkpoint, resume the
/// snapshot into a different shard count, and hot-reload the model
/// mid-resume. Everything the projection keeps (counters, gauges,
/// histogram counts) is a deterministic function of (seed, scale,
/// configs) — only histogram sums carry wall-clock time.
fn run_durable_pipeline() -> telemetry::Snapshot {
    let corpus = synthtraffic::ground_truth(42, 0.05);
    let data = build_dataset(
        corpus.iter().map(|ep| (ep.transactions.as_slice(), ep.is_infection())),
    );
    let classifier = Classifier::fit_default(&data, 42);
    let mut stream: Vec<nettrace::HttpTransaction> =
        corpus.iter().flat_map(|ep| ep.transactions.iter().cloned()).collect();
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    nettrace::assign_seq(&mut stream);

    let config = DetectorConfig {
        spill: Some(SpillConfig {
            max_live_bytes: 32 * 1024,
            max_spill_bytes: usize::MAX / 2,
            min_idle_secs: 30.0,
        }),
        ..DetectorConfig::default()
    };
    // Queues sized to the stream so the feeder never blocks: the
    // backpressure-wait counter would otherwise depend on worker timing.
    let stream_config = |shards| StreamConfig {
        shards,
        queue_capacity: stream.len().max(64),
        ..StreamConfig::default()
    };
    let cut = (stream.len() / 3).max(1) as u64;

    // First leg (2 shards): crash right after the first checkpoint.
    let mut first: Option<EngineSnapshot> = None;
    let mut crash_sink = |snap: &EngineSnapshot| {
        first = Some(snap.clone());
        Err("simulated crash".to_string())
    };
    analyze_transactions_durable(
        &stream,
        classifier.clone(),
        config.clone(),
        stream_config(2),
        None,
        DurableReplayOptions {
            checkpoint_every: cut,
            snapshot_sink: Some(&mut crash_sink),
            ..DurableReplayOptions::default()
        },
    )
    .expect_err("the crash sink aborts the first leg");

    // Second leg (3 shards): resume, keep checkpointing, and swap the
    // model in two-thirds of the way through the stream.
    let registry = Registry::new();
    let mut checkpoints = 0u64;
    let mut count_sink = |_: &EngineSnapshot| {
        checkpoints += 1;
        Ok(())
    };
    analyze_transactions_durable(
        &stream,
        classifier.clone(),
        config,
        stream_config(3),
        Some(&registry),
        DurableReplayOptions {
            resume: first,
            checkpoint_every: cut,
            snapshot_sink: Some(&mut count_sink),
            reload: Some((classifier, stream.len() as u64 * 2 / 3)),
            ..DurableReplayOptions::default()
        },
    )
    .expect("the resumed leg completes");
    assert!(checkpoints > 0);
    registry.snapshot()
}

#[test]
fn durable_pipeline_telemetry_matches_golden_snapshot() {
    let snapshot = run_durable_pipeline();
    let actual = Golden::project(&snapshot);

    // Structural sanity independent of the golden file: the run must
    // actually exercise the durable tier end to end.
    assert_eq!(actual.histogram_counts["streamd_snapshot_restore_ns"], 1, "one resume");
    assert!(actual.histogram_counts["streamd_snapshot_write_ns"] >= 2, "several checkpoints");
    assert_eq!(actual.counters["streamd_model_reloads_total"], 1, "one hot-reload");
    assert!(actual.counters["session_spilled_conversations_total"] > 0, "spill tier active");
    assert!(actual.counters["session_rehydrations_total"] > 0, "rehydration exercised");
    assert_eq!(actual.counters["session_spill_evictions_total"], 0, "budget never bound");
    assert_eq!(actual.gauges["session_conversations_frozen"], 0, "final sweep thawed all");
    assert_eq!(actual.counters["streamd_backpressure_waits_total"], 0, "queues never filled");
    assert_eq!(
        actual.counters["streamd_enqueued_total"],
        actual.counters["streamd_processed_total"],
        "drain loses nothing"
    );

    compare_against_golden(
        &actual,
        DURABLE_GOLDEN_PATH,
        "telemetry-durable-golden-actual.json",
    );
}

#[test]
fn pipeline_telemetry_is_reproducible_within_a_run() {
    // Two independent runs of the same seeded pipeline agree exactly —
    // the precondition for the golden file being meaningful at all.
    let a = Golden::project(&run_pipeline());
    let b = Golden::project(&run_pipeline());
    assert_eq!(a, b);
}
