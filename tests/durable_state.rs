//! Durable state tier acceptance tests (DESIGN.md §13).
//!
//! Three invariants:
//!
//! 1. **Snapshot/kill/restore is lossless.** A replay interrupted at a
//!    random checkpoint and resumed from the snapshot produces the
//!    byte-identical `ForensicReport` of an uninterrupted run — at
//!    shards {1, 2, 8}, and even when the snapshot was written at one
//!    shard count and restored into another.
//! 2. **The spill tier is behavior-neutral.** Under an aggressive
//!    live-memory budget, as long as the spill budget never forces a
//!    hard eviction, the alert stream is bit-identical to an unbounded
//!    run, and the spill/rehydrate counters balance.
//! 3. **Model hot-reload is atomic and lossless.** A mid-stream swap
//!    drops zero transactions and every alert is attributable to
//!    exactly one model generation.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector, SpillConfig};
use nettrace::HttpTransaction;
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamd::{
    analyze_transactions_durable, analyze_transactions_sharded, DurableReplayOptions,
    EngineSnapshot, StreamConfig, StreamEngine,
};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 11)
    })
}

/// A second, genuinely different model for hot-reload tests.
fn other_classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(19);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..20 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.41e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.44e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 23)
    })
}

/// Interleaved multi-client stream, `(ts)`-sorted and `seq`-numbered —
/// exactly what a capture replay feeds.
fn build_stream(seed: u64, episodes: &[(bool, usize)]) -> Vec<HttpTransaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream: Vec<HttpTransaction> = Vec::new();
    for (i, &(infected, idx)) in episodes.iter().enumerate() {
        let t0 = 1.4e9 + i as f64 * 37.0;
        if infected {
            stream.extend(generate_infection(&mut rng, EkFamily::ALL[idx % 10], t0).transactions);
        } else {
            stream.extend(
                generate_benign(&mut rng, BenignScenario::WEIGHTED[idx % 8].0, t0).transactions,
            );
        }
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    nettrace::assign_seq(&mut stream);
    stream
}

fn shard_config(shards: usize) -> StreamConfig {
    StreamConfig { shards, queue_capacity: 16, batch_size: 3, ..StreamConfig::default() }
}

/// Runs a durable replay that "crashes" right after its first
/// checkpoint (the sink captures the snapshot, then fails), returning
/// the snapshot after a full byte round-trip — exactly what a restarted
/// process would read back from disk.
fn crash_after_first_checkpoint(
    stream: &[HttpTransaction],
    shards: usize,
    checkpoint_every: u64,
) -> EngineSnapshot {
    let mut captured: Option<EngineSnapshot> = None;
    let mut sink = |snap: &EngineSnapshot| {
        captured = Some(snap.clone());
        Err("simulated crash".to_string())
    };
    let err = analyze_transactions_durable(
        stream,
        classifier().clone(),
        DetectorConfig::default(),
        shard_config(shards),
        None,
        DurableReplayOptions {
            checkpoint_every,
            snapshot_sink: Some(&mut sink),
            ..DurableReplayOptions::default()
        },
    )
    .expect_err("the failing sink aborts the replay");
    assert!(err.contains("simulated crash"), "{err}");
    let snap = captured.expect("one checkpoint was written before the crash");
    let bytes = snap.to_bytes().expect("snapshot serializes");
    EngineSnapshot::from_bytes(&bytes).expect("snapshot round-trips")
}

fn resume_report(
    stream: &[HttpTransaction],
    shards: usize,
    snapshot: EngineSnapshot,
) -> dynaminer::forensic::ForensicReport {
    analyze_transactions_durable(
        stream,
        classifier().clone(),
        DetectorConfig::default(),
        shard_config(shards),
        None,
        DurableReplayOptions { resume: Some(snapshot), ..DurableReplayOptions::default() },
    )
    .expect("resumed replay completes")
}

proptest! {
    /// Acceptance: snapshot at a random mid-replay point, kill, restore
    /// → byte-identical report at shards {1, 2, 8}, and across a shard
    /// count change (written at 1 shard, restored into 4).
    #[test]
    fn snapshot_kill_restore_is_byte_identical(
        seed in any::<u64>(),
        episodes in vec((any::<bool>(), 0usize..16), 2..5),
        cut in 1u64..400,
    ) {
        let stream = build_stream(seed, &episodes);
        let cut = cut.min(stream.len() as u64).max(1);
        let reference = analyze_transactions_sharded(
            &stream,
            classifier().clone(),
            DetectorConfig::default(),
            shard_config(2),
        );
        let reference_json = serde_json::to_string(&reference).unwrap();

        for shards in [1usize, 2, 8] {
            let snap = crash_after_first_checkpoint(&stream, shards, cut);
            prop_assert!(snap.fed >= cut.min(stream.len() as u64), "snapshot covers the first chunk");
            let resumed = resume_report(&stream, shards, snap);
            let json = serde_json::to_string(&resumed).unwrap();
            prop_assert_eq!(
                &json, &reference_json,
                "kill/restore at {} shards diverged (cut {})", shards, cut
            );
        }

        // Rebalance: snapshot written by a 1-shard engine, restored
        // into a 4-shard engine.
        let snap = crash_after_first_checkpoint(&stream, 1, cut);
        let resumed = resume_report(&stream, 4, snap);
        let json = serde_json::to_string(&resumed).unwrap();
        prop_assert_eq!(&json, &reference_json, "1→4 shard rebalance diverged (cut {})", cut);
    }

    /// Acceptance: under an aggressive spill budget the alert stream is
    /// bit-identical to the unbounded run whenever the spill tier never
    /// has to hard-evict, and the tier's accounting balances.
    #[test]
    fn spill_tier_is_alert_identical_when_hard_eviction_never_triggers(
        seed in any::<u64>(),
        episodes in vec((any::<bool>(), 0usize..16), 2..5),
        max_live_kb in 4usize..64,
    ) {
        let stream = build_stream(seed, &episodes);
        let spill_config = DetectorConfig {
            spill: Some(SpillConfig {
                max_live_bytes: max_live_kb * 1024,
                max_spill_bytes: usize::MAX / 2,
                min_idle_secs: 5.0,
            }),
            ..DetectorConfig::default()
        };

        let mut unbounded = OnTheWireDetector::new(
            classifier().clone(), DetectorConfig::default());
        let mut spilled = OnTheWireDetector::new(classifier().clone(), spill_config);
        for tx in &stream {
            unbounded.observe(tx);
            spilled.observe(tx);
        }

        let tracker = spilled.tracker();
        prop_assert_eq!(tracker.spill_evicted_count(), 0, "budget was generous enough");
        prop_assert_eq!(tracker.cap_evicted_count(), 0, "caps never bound");
        prop_assert_eq!(
            tracker.spilled_count(),
            tracker.rehydrated_count() + tracker.frozen_count() as u64,
            "every spilled conversation is frozen or was rehydrated"
        );

        let (got, want) = (spilled.alerts(), unbounded.alerts());
        prop_assert_eq!(got.len(), want.len(), "alert count");
        for (a, b) in got.iter().zip(want.iter()) {
            prop_assert_eq!(a.client, b.client);
            prop_assert_eq!(a.conversation_id, b.conversation_id);
            prop_assert_eq!(a.ts.to_bits(), b.ts.to_bits());
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(&a.trigger_host, &b.trigger_host);
        }
    }
}

/// Acceptance: a model hot-reload mid-replay drops zero transactions
/// (`enqueued == processed + dropped` holds on both sides of the swap)
/// and every alert carries exactly one model generation — 1 before the
/// swap, 2 after.
#[test]
fn model_hot_reload_is_atomic_and_lossless() {
    let stream = build_stream(
        21,
        &[(true, 0), (false, 3), (true, 5), (false, 1), (true, 9), (true, 2)],
    );
    let registry = telemetry::Registry::new();
    let mut engine = StreamEngine::with_telemetry(
        classifier().clone(),
        DetectorConfig::default(),
        shard_config(4),
        &registry,
    );
    assert_eq!(engine.model_version(), 1);
    let mid = stream.len() / 2;

    let before = engine.process(stream[..mid].iter().cloned());
    assert_eq!(engine.reload_model(other_classifier().clone()), 2);
    let after = engine.process(stream[mid..].iter().cloned());

    assert_eq!(before.enqueued, before.processed + before.dropped);
    assert_eq!(after.enqueued, after.processed + after.dropped);
    assert_eq!(before.dropped + after.dropped, 0, "blocking policy drops nothing");
    assert_eq!(
        before.enqueued + after.enqueued,
        stream.len() as u64,
        "every transaction was fed exactly once across the reload"
    );

    assert!(!before.alerts.is_empty(), "infection episodes alert before the swap");
    assert!(before.alerts.iter().all(|a| a.model_version == 1), "pre-swap generation");
    assert!(after.alerts.iter().all(|a| a.model_version == 2), "post-swap generation");
    assert_eq!(engine.model_version(), 2);
    assert_eq!(registry.snapshot().counter("streamd_model_reloads_total"), 1);
}

/// The durable driver's `reload` option with the *same* model must not
/// disturb the stream: the report stays byte-identical to a plain
/// sharded replay, proving the swap machinery neither drops nor
/// reorders transactions.
#[test]
fn durable_reload_with_identical_model_is_invisible() {
    let stream = build_stream(33, &[(true, 4), (false, 2), (true, 8), (false, 6)]);
    let reference = analyze_transactions_sharded(
        &stream,
        classifier().clone(),
        DetectorConfig::default(),
        shard_config(2),
    );
    let report = analyze_transactions_durable(
        &stream,
        classifier().clone(),
        DetectorConfig::default(),
        shard_config(2),
        None,
        DurableReplayOptions {
            checkpoint_every: 64,
            reload: Some((classifier().clone(), (stream.len() / 2) as u64)),
            ..DurableReplayOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "reloading the same model is a no-op for the report"
    );
}
