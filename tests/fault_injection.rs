//! Fault-injection suite: every mutation class from
//! `synthtraffic::faultgen` must go through the lenient ingest pipeline
//! without a panic or an error, with the ingest counters accounting for
//! what was lost, and with detection surviving on whatever conversations
//! the damage left intact.

use std::sync::OnceLock;

use dynaminer::classifier::{build_dataset, Classifier};
use proptest::prelude::*;
use dynaminer::detector::DetectorConfig;
use dynaminer::forensic;
use nettrace::{HttpTransaction, IngestReport, TransactionExtractor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::faultgen::{self, Fault};
use synthtraffic::pcapgen::episode_pcap;
use synthtraffic::{BenignScenario, EkFamily};

fn classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(77);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 7)
    })
}

fn infection_pcap(seed: u64, family: EkFamily) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    episode_pcap(&generate_infection(&mut rng, family, 1.4e9)).unwrap()
}

/// Runs damaged bytes through capture → reassembly → transactions and
/// checks the counters are internally consistent.
fn lenient_extract_checked(bytes: &[u8]) -> (Vec<HttpTransaction>, IngestReport) {
    let mut report = IngestReport::new();
    let packets = nettrace::capture::read_packets_lenient(bytes, &mut report);
    assert_eq!(packets.len() as u64, report.packets_read);
    let txs = TransactionExtractor::extract_lenient(&packets, &mut report);
    assert_eq!(txs.len() as u64, report.transactions_recovered);
    assert!(report.packets_dropped_decode + report.packets_non_tcp <= report.packets_read);
    assert!(
        report.streams_salvaged + report.streams_discarded + report.streams_skipped_non_http
            <= report.streams_total,
        "{report}"
    );
    (txs, report)
}

#[test]
fn every_fault_class_survives_the_pipeline() {
    for (i, fault) in Fault::ALL.into_iter().enumerate() {
        for seed in 0..4u64 {
            let pcap = infection_pcap(seed + 1, EkFamily::ALL[(i + seed as usize) % 10]);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let hurt = faultgen::apply(&pcap, fault, &mut rng);
            let (txs, report) = lenient_extract_checked(&hurt);
            // Structure-preserving faults must not cost transactions.
            if matches!(fault, Fault::DuplicatePackets | Fault::ReorderPackets) {
                let clean = TransactionExtractor::extract(
                    &nettrace::capture::read_packets(&pcap).unwrap(),
                )
                .unwrap();
                assert_eq!(txs.len(), clean.len(), "{fault} lost transactions");
                assert!(!report.has_loss(), "{fault}: {report}");
            }
        }
    }
}

#[test]
fn compound_damage_survives_the_pipeline() {
    for seed in 0..3u64 {
        let pcap = infection_pcap(seed + 20, EkFamily::ALL[seed as usize % 10]);
        let mut rng = StdRng::seed_from_u64(40 + seed);
        let hurt = faultgen::apply_all(&pcap, &mut rng);
        let _ = lenient_extract_checked(&hurt);
    }
}

#[test]
fn clean_capture_lenient_matches_strict() {
    for (seed, family) in [(3, EkFamily::Angler), (4, EkFamily::Rig), (5, EkFamily::Goon)] {
        let pcap = infection_pcap(seed, family);
        let strict =
            TransactionExtractor::extract(&nettrace::capture::read_packets(&pcap).unwrap())
                .unwrap();
        let (lenient, report) = lenient_extract_checked(&pcap);
        assert_eq!(lenient, strict);
        assert!(!report.has_loss(), "{report}");
    }
}

#[test]
fn fault_free_portions_are_fully_recovered() {
    // Two episodes from different victims, B's packets corrupted, A's
    // untouched: every one of A's transactions must still come through.
    let mut rng = StdRng::seed_from_u64(8);
    let ep_a = generate_infection(&mut rng, EkFamily::Nuclear, 1.4e9);
    let ep_b = generate_infection(&mut rng, EkFamily::Fiesta, 1.4e9);
    assert_ne!(ep_a.victim.addr, ep_b.victim.addr, "episodes must be distinguishable");
    let pcap_a = episode_pcap(&ep_a).unwrap();
    let clean_a =
        TransactionExtractor::extract(&nettrace::capture::read_packets(&pcap_a).unwrap())
            .unwrap();
    for fault in [Fault::MangleRequestLines, Fault::BreakChunkFraming, Fault::CorruptTcpSeq] {
        let mut fault_rng = StdRng::seed_from_u64(9);
        let hurt_b = faultgen::apply(&episode_pcap(&ep_b).unwrap(), fault, &mut fault_rng);
        // Merge A's packets with the damaged B packets into one capture.
        let mut report = IngestReport::new();
        let mut merged = nettrace::capture::read_packets_lenient(&pcap_a, &mut report);
        merged.extend(nettrace::capture::read_packets_lenient(&hurt_b, &mut report));
        merged.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let mut buf = Vec::new();
        let mut w = nettrace::pcap::PcapWriter::new(&mut buf).unwrap();
        for p in &merged {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap();
        let (txs, _) = lenient_extract_checked(&buf);
        let recovered_a =
            txs.iter().filter(|t| t.client.addr == ep_a.victim.addr).count();
        assert!(
            recovered_a >= clean_a.len(),
            "{fault}: recovered {recovered_a} of {} fault-free transactions",
            clean_a.len()
        );
    }
}

#[test]
fn corrupted_infection_replay_still_alerts() {
    // Find an infection capture the detector alerts on when clean…
    let clf = classifier();
    let mut chosen = None;
    for seed in 0..12u64 {
        let pcap = infection_pcap(100 + seed, EkFamily::ALL[seed as usize % 10]);
        let report =
            forensic::analyze_pcap_lenient(&pcap, clf.clone(), DetectorConfig::default());
        if report.alerts > 0 {
            chosen = Some(pcap);
            break;
        }
    }
    let pcap = chosen.expect("no clean infection capture alerted");
    // …then confirm structure-preserving damage does not silence it.
    for fault in [Fault::DuplicatePackets, Fault::ReorderPackets] {
        let mut rng = StdRng::seed_from_u64(13);
        let hurt = faultgen::apply(&pcap, fault, &mut rng);
        let report =
            forensic::analyze_pcap_lenient(&hurt, clf.clone(), DetectorConfig::default());
        assert!(report.alerts > 0, "{fault} silenced the detector");
        assert!(report.ingest.is_some());
    }
    // A tail truncation loses data but the surviving conversations still
    // carry the infection.
    let cut = &pcap[..pcap.len() - 3];
    let report = forensic::analyze_pcap_lenient(cut, clf.clone(), DetectorConfig::default());
    assert!(report.alerts > 0, "tail truncation silenced the detector");
    assert!(report.ingest.unwrap().has_loss());
}

#[test]
fn telemetry_counters_track_ingest_reports_across_all_fault_classes() {
    // One long-lived metrics aggregation over every fault class: after
    // each hostile capture is recorded as a per-capture delta report,
    // the telemetry counters must equal the merged report exactly —
    // the 1:1 field↔counter contract of `IngestMetrics`.
    let registry = telemetry::Registry::new();
    let metrics = nettrace::metrics::IngestMetrics::new(&registry);
    let mut merged = IngestReport::new();
    let mut captures = 0u64;
    let mut truncated = 0u64;
    for (i, fault) in Fault::ALL.into_iter().enumerate() {
        for seed in 0..3u64 {
            let pcap = infection_pcap(200 + seed, EkFamily::ALL[(i + seed as usize) % 10]);
            let mut rng = StdRng::seed_from_u64(3000 + i as u64 * 10 + seed);
            let hurt = faultgen::apply(&pcap, fault, &mut rng);
            let mut report = IngestReport::new();
            let packets = nettrace::capture::read_packets_lenient(&hurt, &mut report);
            TransactionExtractor::extract_lenient(&packets, &mut report);
            metrics.record(&report);
            captures += 1;
            truncated += u64::from(report.capture_truncated);
            merged.merge(&report);
            // Consistency must hold after every capture, not only at
            // the end — a divergence points at the offending fault.
            metrics.assert_consistent_with(&merged, captures, truncated);
        }
    }
    // The hostile corpus must actually have exercised the malformed-
    // record cause counters, not just the happy path.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ingest_captures_total"), 11 * 3);
    assert!(snap.counter("ingest_transactions_recovered_total") > 0);
    let loss_causes = [
        "ingest_records_dropped_total",
        "ingest_capture_truncations_total",
        "ingest_packets_dropped_decode_total",
        "ingest_streams_salvaged_total",
        "ingest_streams_discarded_total",
        "ingest_reassembly_gaps_total",
        "ingest_gzip_failures_total",
        "ingest_deflate_failures_total",
        "ingest_chunked_failures_total",
    ];
    let recorded: Vec<&str> =
        loss_causes.into_iter().filter(|c| snap.counter(c) > 0).collect();
    assert!(
        recorded.len() >= 4,
        "fault corpus only moved {} loss-cause counters: {recorded:?}",
        recorded.len()
    );
}

/// Spill-tier accounting across the hostile corpus: for every fault
/// class, a detector running an aggressive spill configuration (every
/// idle conversation is demoted, a tiny spill budget forces hard
/// evictions) must keep the conversation ledger balanced — every
/// created conversation is live, frozen, or accounted to exactly one
/// eviction counter — and the telemetry mirror must match the tracker
/// exactly.
#[test]
fn spill_accounting_balances_across_all_fault_classes() {
    use dynaminer::detector::{OnTheWireDetector, SpillConfig};
    let clf = classifier();
    let mut spilled_total = 0u64;
    let mut spill_evicted_total = 0usize;
    for (i, fault) in Fault::ALL.into_iter().enumerate() {
        let pcap = infection_pcap(300 + i as u64, EkFamily::ALL[i % 10]);
        let mut rng = StdRng::seed_from_u64(500 + i as u64);
        let hurt = faultgen::apply(&pcap, fault, &mut rng);
        let (txs, _) = lenient_extract_checked(&hurt);
        let registry = telemetry::Registry::new();
        let config = DetectorConfig {
            spill: Some(SpillConfig {
                // Zero live budget + zero idle threshold: every
                // conversation freezes as soon as another one is
                // touched. The spill budget is small enough for busy
                // captures to overflow it into hard evictions.
                max_live_bytes: 1,
                max_spill_bytes: 24 * 1024,
                min_idle_secs: 0.0,
            }),
            ..DetectorConfig::default()
        };
        let mut det = OnTheWireDetector::with_telemetry(clf.clone(), config, &registry);
        for tx in &txs {
            det.observe(tx);
        }
        let t = det.tracker();
        assert_eq!(
            t.created_count(),
            (t.conversation_count()
                + t.frozen_count()
                + t.evicted_count()
                + t.cap_evicted_count()
                + t.spill_evicted_count()) as u64,
            "{fault}: conversation ledger out of balance"
        );
        assert_eq!(
            t.spilled_count(),
            t.rehydrated_count() + t.frozen_count() as u64 + t.spill_evicted_count() as u64,
            "{fault}: every spilled conversation must be frozen, rehydrated, or hard-evicted"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("session_spilled_conversations_total"),
            t.spilled_count(),
            "{fault}"
        );
        assert_eq!(snap.counter("session_rehydrations_total"), t.rehydrated_count(), "{fault}");
        assert_eq!(
            snap.counter("session_spill_evictions_total"),
            t.spill_evicted_count() as u64,
            "{fault}"
        );
        assert_eq!(
            snap.gauges["session_conversations_frozen"],
            t.frozen_count() as i64,
            "{fault}"
        );
        assert_eq!(snap.gauges["session_spill_bytes"], t.spill_bytes() as i64, "{fault}");
        spilled_total += t.spilled_count();
        spill_evicted_total += t.spill_evicted_count();
    }
    // The corpus must actually exercise the tier, including the
    // last-resort path — otherwise the identities above are vacuous.
    assert!(spilled_total > 0, "no conversation was ever spilled");
    assert!(spill_evicted_total > 0, "the spill budget never forced a hard eviction");
}

/// Runs damaged bytes through the copying packet pipeline and the
/// zero-copy span pipeline and asserts they are indistinguishable:
/// byte-identical transaction sequences and identical ingest counters.
fn assert_pipelines_identical(bytes: &[u8]) -> (Vec<HttpTransaction>, IngestReport) {
    let mut legacy_report = IngestReport::new();
    let packets = nettrace::capture::read_packets_lenient(bytes, &mut legacy_report);
    let legacy_txs = TransactionExtractor::extract_lenient(&packets, &mut legacy_report);
    let mut span_report = IngestReport::new();
    let span_txs = nettrace::SpanPipeline::extract_capture_lenient(bytes, &mut span_report);
    assert_eq!(legacy_report, span_report, "ingest counters diverged");
    assert_eq!(legacy_txs, span_txs, "transaction sequences diverged");
    (span_txs, span_report)
}

/// Tentpole equivalence: across every `faultgen` mutation class, the
/// zero-copy span pipeline must produce byte-identical transactions,
/// identical ingest accounting, and an identical end-to-end
/// `ForensicReport` JSON document to the copying path it replaced.
#[test]
fn zero_copy_path_matches_copying_path_for_every_fault_class() {
    let clf = classifier();
    for (i, fault) in Fault::ALL.into_iter().enumerate() {
        for seed in 0..3u64 {
            let pcap = infection_pcap(700 + seed, EkFamily::ALL[(i + seed as usize) % 10]);
            let mut rng = StdRng::seed_from_u64(7000 + i as u64 * 10 + seed);
            let hurt = faultgen::apply(&pcap, fault, &mut rng);
            let (txs, ingest) = assert_pipelines_identical(&hurt);
            if seed != 0 {
                continue;
            }
            // End-to-end forensic JSON: replay the copying path's
            // transactions through the detector and compare against the
            // span-pipeline-backed `analyze_pcap_lenient`.
            let span_json = serde_json::to_string(&forensic::analyze_pcap_lenient(
                &hurt,
                clf.clone(),
                DetectorConfig::default(),
            ))
            .unwrap();
            let mut legacy =
                forensic::analyze_transactions(&txs, clf.clone(), DetectorConfig::default());
            legacy.ingest = Some(ingest);
            assert_eq!(
                span_json,
                serde_json::to_string(&legacy).unwrap(),
                "{fault}: forensic JSON diverged"
            );
        }
    }
}

proptest! {
    /// Randomized sweep over (seed, fault class, family): the copying
    /// and zero-copy pipelines must agree on arbitrary hostile input,
    /// not just the deterministic corpus above.
    #[test]
    fn zero_copy_equivalence_holds_for_arbitrary_damage(
        seed in 0u64..10_000,
        fault_idx in 0usize..Fault::ALL.len(),
        family_idx in 0usize..EkFamily::ALL.len(),
    ) {
        let pcap = infection_pcap(seed + 1, EkFamily::ALL[family_idx]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f001);
        let hurt = faultgen::apply(&pcap, Fault::ALL[fault_idx], &mut rng);
        let (txs, report) = assert_pipelines_identical(&hurt);
        prop_assert_eq!(txs.len() as u64, report.transactions_recovered);
        // Truncation-style damage must also agree: cut the capture
        // mid-record and mid-packet.
        if hurt.len() > 40 {
            assert_pipelines_identical(&hurt[..hurt.len() - 7]);
            assert_pipelines_identical(&hurt[..hurt.len() / 2]);
        }
    }
}

#[test]
fn every_fault_class_replays_through_the_detector() {
    let clf = classifier();
    for (i, fault) in Fault::ALL.into_iter().enumerate() {
        let pcap = infection_pcap(50 + i as u64, EkFamily::ALL[i % 10]);
        let mut rng = StdRng::seed_from_u64(60 + i as u64);
        let hurt = faultgen::apply(&pcap, fault, &mut rng);
        let report = forensic::analyze_pcap_lenient(&hurt, clf.clone(), DetectorConfig::default());
        let ingest = report.ingest.expect("lenient replay always reports ingest health");
        // Replay counts after trusted-vendor weed-out, so recovered is
        // an upper bound.
        assert!(ingest.transactions_recovered as usize >= report.transactions);
    }
}
