//! Quickstart: generate traffic, build WCGs, train the ensemble random
//! forest, and classify unseen conversations.
//!
//! Run with: `cargo run --example quickstart`

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::features;
use dynaminer::wcg::Wcg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    // 1. Generate a small labelled corpus (stand-in for the paper's 770
    //    infection + 980 benign PCAPs).
    let mut rng = StdRng::seed_from_u64(2024);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..60 {
        let family = EkFamily::ALL[i % EkFamily::ALL.len()];
        corpus.push((generate_infection(&mut rng, family, 1.4e9).transactions, true));
        let scenario = BenignScenario::WEIGHTED[i % 8].0;
        corpus.push((generate_benign(&mut rng, scenario, 1.43e9).transactions, false));
    }
    println!("corpus: {} conversations", corpus.len());

    // 2. Abstract each conversation into a Web Conversation Graph and
    //    extract the 37 payload-agnostic features.
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    println!("dataset: {} samples x {} features", data.len(), data.n_features());

    // 3. Train the ensemble random forest (20 trees, log2(37)+1 features
    //    per split, probability averaging).
    let classifier = Classifier::fit_default(&data, 7);

    // 4. Classify unseen conversations.
    let mut eval_rng = StdRng::seed_from_u64(9999);
    let infection = generate_infection(&mut eval_rng, EkFamily::Angler, 1.45e9);
    let benign = generate_benign(&mut eval_rng, BenignScenario::Search, 1.45e9);

    for (name, txs) in
        [("angler infection", &infection.transactions), ("benign search", &benign.transactions)]
    {
        let wcg = Wcg::from_transactions(txs);
        let fv = features::extract(&wcg);
        let score = classifier.score_wcg(&wcg);
        println!(
            "{name}: hosts={} edges={} redirect-chain={} P(infection)={score:.3} → {}",
            wcg.graph.node_count(),
            wcg.graph.edge_count(),
            wcg.redirects.max_chain,
            if score >= 0.5 { "INFECTION" } else { "benign" },
        );
        println!(
            "   order={} diameter={} betweenness={:.4} inter-tx={:.2}s",
            fv.get("order"),
            fv.get("diameter"),
            fv.get("avg-betweenness-centrality"),
            fv.get("avg-inter-transact-time"),
        );
    }
}
