//! Export an infection WCG as Graphviz DOT (the paper's Figure 6).
//!
//! Generates an Angler exploit-kit episode, abstracts it into a WCG, and
//! prints the DOT graph. Pipe through `dot -Tpng` to render.
//!
//! Run with: `cargo run --example wcg_dot`

use dynaminer::wcg::Wcg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::episode::generate_infection;
use synthtraffic::EkFamily;

fn main() {
    let mut rng = StdRng::seed_from_u64(1221); // captured 12/21, like Fig. 6
    let episode = generate_infection(&mut rng, EkFamily::Angler, 1.4508e9);
    let wcg = Wcg::from_transactions(&episode.transactions);
    eprintln!(
        "// Angler WCG: {} nodes, {} edges, stages pre/dl/post = {:?}, max redirect chain {}",
        wcg.graph.node_count(),
        wcg.graph.edge_count(),
        wcg.stage_counts,
        wcg.redirects.max_chain,
    );
    println!("{}", wcg.to_dot("angler_wcg"));
}
