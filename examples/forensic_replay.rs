//! Forensic detection on a recorded capture (the paper's Case Study 1).
//!
//! Builds a pcap of a long streaming-site session with injected infection
//! conversations, then replays the capture through DynaMiner and prints
//! per-conversation verdicts plus every exploit-type download with its
//! digest (the artifacts the paper submits to VirusTotal).
//!
//! Run with: `cargo run --example forensic_replay`

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::DetectorConfig;
use dynaminer::forensic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen;
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    // Train on a small ground-truth-style corpus.
    let mut rng = StdRng::seed_from_u64(11);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..50 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    let classifier = Classifier::fit_default(&data, 5);

    // Record a "streaming session": benign video traffic with two
    // injected infections, serialized to real pcap bytes.
    let mut rec_rng = StdRng::seed_from_u64(77);
    let mut packets = Vec::new();
    let session_start = 1.468e9; // July 2016, like the EURO2016 capture
    for i in 0..4 {
        let ep = generate_benign(&mut rec_rng, BenignScenario::Video, session_start + i as f64 * 400.0);
        packets.extend(pcapgen::episode_packets(&ep));
    }
    for (i, family) in [EkFamily::Angler, EkFamily::Neutrino].iter().enumerate() {
        let ep = generate_infection(&mut rec_rng, *family, session_start + 900.0 + i as f64 * 600.0);
        packets.extend(pcapgen::episode_packets(&ep));
    }
    packets.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let mut pcap = Vec::new();
    let mut writer = nettrace::pcap::PcapWriter::new(&mut pcap).unwrap();
    for p in &packets {
        writer.write_packet(p).unwrap();
    }
    writer.finish().unwrap();
    println!("recorded session: {} packets, {} pcap bytes", packets.len(), pcap.len());

    // Replay through DynaMiner.
    let report = forensic::analyze_pcap(&pcap, classifier, DetectorConfig::default())
        .expect("capture parses");
    println!(
        "replayed {} transactions across {} conversations; {} alert(s)",
        report.transactions,
        report.conversations.len(),
        report.alerts
    );
    for verdict in &report.conversations {
        println!(
            "  conversation {}: {} txs, {} hosts, score {:.3}{}",
            verdict.id,
            verdict.transactions,
            verdict.hosts,
            verdict.score,
            if verdict.alerted { "  ← ALERT" } else { "" },
        );
    }
    println!("exploit-type downloads observed (submit these to a scanner):");
    for d in &report.downloads {
        println!("  {} {} {} bytes digest={:016x}", d.host, d.class, d.size, d.digest);
    }
}
