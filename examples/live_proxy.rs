//! On-the-wire detection in a mini-enterprise (the paper's Case Study 2).
//!
//! Three hosts browse concurrently through one DynaMiner instance deployed
//! as a proxy; infections are injected into two of the streams. Alerts
//! print as they fire, exactly one per infectious conversation.
//!
//! Run with: `cargo run --example live_proxy`

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..50 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    let classifier = Classifier::fit_default(&data, 5);
    let mut detector = OnTheWireDetector::new(classifier, DetectorConfig::default());

    // Three hosts' interleaved traffic: mostly benign, two infections.
    let mut traffic_rng = StdRng::seed_from_u64(42);
    let t0 = 1.46e9;
    let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
    for i in 0..9 {
        let ep = generate_benign(
            &mut traffic_rng,
            BenignScenario::WEIGHTED[i % 8].0,
            t0 + i as f64 * 120.0,
        );
        stream.extend(ep.transactions);
    }
    for (i, family) in [EkFamily::Rig, EkFamily::Magnitude].iter().enumerate() {
        let ep = generate_infection(&mut traffic_rng, *family, t0 + 400.0 + i as f64 * 300.0);
        println!(
            "(injected {} infection for victim {} at t+{:.0}s)",
            family,
            ep.victim.addr,
            ep.start_ts - t0
        );
        stream.extend(ep.transactions);
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));

    println!("streaming {} transactions through the proxy…", stream.len());
    for tx in &stream {
        if let Some(alert) = detector.observe(tx) {
            println!(
                "ALERT t+{:.0}s client={} host={} payload={} score={:.3} ({} txs in WCG)",
                alert.ts - t0,
                alert.client,
                alert.trigger_host,
                alert.trigger_payload,
                alert.score,
                alert.conversation_size,
            );
        }
    }
    println!(
        "done: {} alerts over {} conversations ({} transactions inspected)",
        detector.alerts().len(),
        detector.tracker().conversation_count(),
        detector.transactions_seen(),
    );
}
