//! On-the-wire detection in a mini-enterprise (the paper's Case Study 2).
//!
//! Three hosts browse concurrently through one DynaMiner deployment at
//! the proxy; infections are injected into two of the streams. The
//! traffic runs through the sharded `streamd::StreamEngine` — one
//! detector per shard, hash-partitioned by client address — and the
//! merged alert stream comes back in `(ts, ingest seq)` order, exactly
//! one alert per infectious conversation, identical to what a single
//! detector would emit.
//!
//! Run with: `cargo run --example live_proxy`

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::DetectorConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamd::{StreamConfig, StreamEngine};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..50 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    let classifier = Classifier::fit_default(&data, 5);

    // Three hosts' interleaved traffic: mostly benign, two infections.
    let mut traffic_rng = StdRng::seed_from_u64(42);
    let t0 = 1.46e9;
    let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
    for i in 0..9 {
        let ep = generate_benign(
            &mut traffic_rng,
            BenignScenario::WEIGHTED[i % 8].0,
            t0 + i as f64 * 120.0,
        );
        stream.extend(ep.transactions);
    }
    for (i, family) in [EkFamily::Rig, EkFamily::Magnitude].iter().enumerate() {
        let ep = generate_infection(&mut traffic_rng, *family, t0 + 400.0 + i as f64 * 300.0);
        println!(
            "(injected {} infection for victim {} at t+{:.0}s)",
            family,
            ep.victim.addr,
            ep.start_ts - t0
        );
        stream.extend(ep.transactions);
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    nettrace::assign_seq(&mut stream);

    // A 4-shard engine: each client's substream lands on one shard, so
    // the per-shard detectors need no coordination and the merged alert
    // stream matches a single-detector run bit for bit.
    let shards = 4;
    let mut engine = StreamEngine::new(
        classifier,
        DetectorConfig::default(),
        StreamConfig { shards, ..StreamConfig::default() },
    );
    println!(
        "streaming {} transactions through the proxy ({shards} shards)…",
        stream.len()
    );
    let report = engine.process(stream.iter().cloned());
    for alert in &report.alerts {
        println!(
            "ALERT t+{:.0}s client={} host={} payload={} score={:.3} ({} txs in WCG)",
            alert.ts - t0,
            alert.client,
            alert.trigger_host,
            alert.trigger_payload,
            alert.score,
            alert.conversation_size,
        );
    }
    let conversations: usize =
        engine.detectors().iter().map(|d| d.tracker().conversation_count()).sum();
    let seen: usize = engine.detectors().iter().map(|d| d.transactions_seen()).sum();
    println!(
        "done: {} alerts over {} conversations ({} transactions inspected)",
        report.alerts.len(),
        conversations,
        seen,
    );
    println!(
        "shards: processed per shard {:?}, imbalance {:.1}%, {} backpressure wait(s), 0 dropped",
        report.per_shard_processed,
        report.imbalance_permille() as f64 / 10.0,
        report.backpressure_waits,
    );
}
