//! Evasion lab: apply the paper's Sec. VII cloaking strategies to one
//! infection and watch the classifier's score respond.
//!
//! Run with: `cargo run --example evasion_lab`

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::wcg::Wcg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::evasion::{self, Evasion};
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    // Train a quick model.
    let mut rng = StdRng::seed_from_u64(8);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..60 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));
    let classifier = Classifier::fit_default(&data, 1);

    // One Angler infection, progressively cloaked.
    let mut eval_rng = StdRng::seed_from_u64(2025);
    let baseline = generate_infection(&mut eval_rng, EkFamily::Angler, 1.45e9);
    println!(
        "baseline Angler episode: {} transactions, {} redirects, {} malicious payloads\n",
        baseline.transactions.len(),
        baseline.redirect_count(),
        baseline.malicious_digests.len(),
    );
    println!("{:<22} {:>6} {:>10} {:>12}", "evasion", "txs", "redirects", "P(infection)");
    for evasion in Evasion::ALL {
        let cloaked = evasion::apply(evasion, baseline.clone());
        let wcg = Wcg::from_transactions(&cloaked.transactions);
        let score = classifier.score_wcg(&wcg);
        println!(
            "{:<22} {:>6} {:>10} {:>12.3}",
            evasion.label(),
            cloaked.transactions.len(),
            cloaked.redirect_count(),
            score,
        );
    }
    println!(
        "\nthe score degrades stage by stage; only stripping every dynamic at once\n\
         (which also neuters the attack) pushes the conversation under the radar."
    );
}
