//! Gain-ratio feature ranking (the paper's Table IV methodology).
//!
//! Builds a labelled corpus, extracts the 37 features, and ranks them by
//! gain ratio averaged over 10 stratified folds.
//!
//! Run with: `cargo run --example feature_ranking`

use dynaminer::classifier::build_dataset;
use mlearn::rank;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut corpus: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
    for i in 0..80 {
        corpus.push((
            generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
            true,
        ));
        corpus.push((
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
            false,
        ));
    }
    let data = build_dataset(corpus.iter().map(|(t, l)| (t.as_slice(), *l)));

    println!("{:<30} {:>18} {:>16}", "Feature", "Gain Ratio", "Average Rank");
    for feature in rank::rank_features(&data, 10, 7).into_iter().take(20) {
        println!(
            "{:<30} {:>9.3} ± {:<6.3} {:>7.1} ± {:<5.2}",
            feature.name, feature.mean_gain, feature.std_gain, feature.mean_rank, feature.std_rank
        );
    }
}
