//! Facade crate for the DynaMiner reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can depend
//! on a single package. The real functionality lives in the member crates:
//! [`dynaminer`] (the paper's contribution), [`nettrace`] (pcap/HTTP
//! substrate), [`wcgraph`] (graph analytics), [`mlearn`] (ensemble random
//! forest), [`synthtraffic`] (calibrated traffic generation), and [`vtsim`]
//! (the VirusTotal-style comparator).

pub use dynaminer;
pub use mlearn;
pub use nettrace;
pub use synthtraffic;
pub use vtsim;
pub use wcgraph;
